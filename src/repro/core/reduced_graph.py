"""Reduced graphs of a schedule (§3-§4).

A *reduced graph* of a schedule ``p`` (§4) is any graph ``G`` such that:

1. ``G`` is acyclic;
2. its nodes are transactions of ``p``, including **all** active ones;
3. whenever two transactions present in ``G`` executed conflicting steps,
   an arc records their order — plus possibly extra arcs connecting
   non-conflicting transactions, inherited from earlier removals.

The conflict graph ``CG(p)`` is the reduced graph with no removals
performed.  :class:`ReducedGraph` couples the arc structure (a
:class:`~repro.graphs.bitclosure.BitClosureGraph`: interned dense node
ids, big-int bitmask closure rows — cycle pre-tests are O(1) bit tests and
removal really is "deleting the node from the transitive closure" as the
paper observes, here a masked row patch) with per-transaction payloads
(:class:`TxnInfo`): lifecycle state, strongest executed access per entity,
declared future accesses (predeclared model), and direct read-from
dependencies (multiwrite model).  The object-set
:class:`~repro.graphs.closure.ClosureGraph` kernel remains in the tree as
the reference oracle (``repro.core.reference``); the property tests assert
row-for-row equivalence between the two across all five schedulers.

Hot-path layers (the §4 cost argument: a deletion policy is only worth
running if evaluating it is cheap relative to the growth it prevents):

* **Inverted entity indexes, as masks** — per entity, one bitmask of the
  transactions that executed any access of it and one of those that wrote
  it (likewise for declared-future accesses), maintained by
  :meth:`record_access` / :meth:`consume_future` / :meth:`abort` /
  :meth:`delete`.  :meth:`accessors_of` / :meth:`writers_of` /
  :meth:`future_declarers_of` read one mask, and the condition checkers'
  witness probes ("does any transaction in this set access ``x`` at least
  this strongly?") collapse to a single AND via :meth:`accessors_mask`.
* **State-set masks** — the active / completed / committed sets are
  bitmasks maintained incrementally (:meth:`active_mask` and friends);
  "the actives among the tight predecessors" is one AND.
* **Copy-free tight-path queries** — :meth:`tight_predecessors` and
  friends run a frontier-as-mask BFS over the closure's adjacency rows
  restricted to :meth:`completed_mask` (no ``as_digraph()`` copy, no
  per-neighbor predicate calls) and memoize per *mutation epoch*: the
  epoch bumps on :meth:`add_arc` / :meth:`set_state` / :meth:`abort` /
  :meth:`delete`, so repeated queries within one policy sweep are O(1).
* **Trial deletions** — :meth:`trial_deletions` lets the eager policies
  run their delete/re-evaluate fixed point on the *live* structure and
  revert via an undo log, instead of copying the whole graph per sweep.

Two distinct node-removal operations exist, and conflating them is the
classic implementation bug this library is careful about:

* :meth:`ReducedGraph.abort` — the transaction aborted: node and incident
  arcs vanish, **paths through it are lost** (they never corresponded to
  committed behavior);
* :meth:`ReducedGraph.delete` — deliberate removal ``D(G, Ti)`` of a
  completed transaction: the node is contracted, every immediate
  predecessor gains an arc to every immediate successor, **paths survive**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import (
    GraphError,
    NotCompletedError,
    TransactionStateError,
    UnknownTransactionError,
)
from repro.graphs.bitclosure import (
    BitClosureGraph,
    BitContractionRecord,
    iter_bits,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.paths import restricted_reach_mask
from repro.model.entities import Entity
from repro.model.status import AccessMode, TxnState, at_least_as_strong
from repro.model.steps import TxnId

__all__ = ["TxnInfo", "ReducedGraph"]


@dataclass
class TxnInfo:
    """Payload the scheduler keeps per transaction node.

    ``accesses`` maps each entity to the strongest access the transaction
    has *executed* on it.  ``future`` is only populated for predeclared
    transactions: the strongest access still to come per entity (entries
    disappear as the declared steps execute).  ``reads_from`` records the
    direct dependencies of the multiwrite model ("A read an entity written
    by B before B committed").
    """

    txn: TxnId
    state: TxnState = TxnState.ACTIVE
    accesses: Dict[Entity, AccessMode] = field(default_factory=dict)
    future: Optional[Dict[Entity, AccessMode]] = None
    reads_from: set = field(default_factory=set)

    def strongest(self, entity: Entity) -> Optional[AccessMode]:
        """Strongest executed access of *entity*, or ``None``."""
        return self.accesses.get(entity)

    def accesses_at_least(self, entity: Entity, reference: AccessMode) -> bool:
        """Has this transaction accessed *entity* at least as strongly as
        *reference*?  (The comparison of conditions C1-C4.)"""
        mode = self.accesses.get(entity)
        return mode is not None and at_least_as_strong(mode, reference)

    def record(self, entity: Entity, mode: AccessMode) -> bool:
        """Strongest-wins merge; returns whether the entry changed (the
        graph-level caller mirrors changes into its entity index)."""
        current = self.accesses.get(entity)
        if current is None or mode > current:
            self.accesses[entity] = mode
            return True
        return False

    def copy(self) -> "TxnInfo":
        return TxnInfo(
            txn=self.txn,
            state=self.state,
            accesses=dict(self.accesses),
            future=None if self.future is None else dict(self.future),
            reads_from=set(self.reads_from),
        )


class _DeletionTrial:
    """Context manager handle returned by :meth:`ReducedGraph.trial_deletions`."""

    __slots__ = ("_graph",)

    def __init__(self, graph: "ReducedGraph") -> None:
        self._graph = graph

    def __enter__(self) -> "ReducedGraph":
        return self._graph

    def __exit__(self, exc_type, exc, tb) -> None:
        self._graph.rollback_trial()


class ReducedGraph:
    """Arc structure + payloads; the object every condition inspects.

    >>> g = ReducedGraph()
    >>> g.add_transaction("T1")
    >>> g.add_transaction("T2")
    >>> g.record_access("T1", "x", AccessMode.READ)
    >>> g.record_access("T2", "x", AccessMode.WRITE)
    >>> g.add_arc("T1", "T2")
    >>> g.set_state("T2", TxnState.COMMITTED)
    >>> sorted(g.active_transactions())
    ['T1']
    >>> g.delete("T2")
    >>> "T2" in g
    False
    """

    def __init__(self) -> None:
        self._closure = BitClosureGraph()
        self._info: Dict[TxnId, TxnInfo] = {}
        self._deleted: set[TxnId] = set()
        self._aborted: set[TxnId] = set()
        # Inverted entity indexes, as masks: per entity, the transactions
        # with any executed access and those with an executed write
        # (likewise for declared futures).  With two access modes the
        # (mask, write-mask) pair answers every ≥-strength query.
        self._entity_any: Dict[Entity, int] = {}
        self._entity_write: Dict[Entity, int] = {}
        self._future_any: Dict[Entity, int] = {}
        self._future_write: Dict[Entity, int] = {}
        # State-set masks (maintained by set_state/abort/delete).
        self._active_bits = 0
        self._completed_bits = 0
        self._committed_bits = 0
        # Mutation epoch + memo cache for the tight-path queries.  The
        # epoch bumps on every mutation that can change a tight set
        # (arcs, states, node removal); the cache is cleared lazily.
        self._epoch = 0
        self._cache_epoch = -1
        self._tight_cache: Dict[Tuple[str, TxnId], int] = {}
        # Undo log while a deletion trial is active (None otherwise).
        self._trial: Optional[
            List[Tuple[TxnId, TxnInfo, BitContractionRecord]]
        ] = None
        # Abort-impact accumulator (None = tracking off).  When enabled,
        # abort() captures the aborting transaction's impacted completed
        # region *before* removal — the engine's DirtyTracker consumes it
        # so an abort dirties only its region instead of everything.
        self._abort_impact: Optional[set[TxnId]] = None

    # -- membership and payloads -------------------------------------------

    def __contains__(self, txn: object) -> bool:
        return txn in self._info

    def __len__(self) -> int:
        return len(self._info)

    def __iter__(self) -> Iterator[TxnId]:
        return iter(self._info)

    def nodes(self) -> FrozenSet[TxnId]:
        return frozenset(self._info)

    def info(self, txn: TxnId) -> TxnInfo:
        try:
            return self._info[txn]
        except KeyError:
            raise UnknownTransactionError(txn) from None

    def state(self, txn: TxnId) -> TxnState:
        return self.info(txn).state

    @property
    def mutation_epoch(self) -> int:
        """Monotone counter of arc/state/membership mutations (cache key)."""
        return self._epoch

    def _bump(self) -> None:
        self._epoch += 1

    # -- mask-native API ----------------------------------------------------
    #
    # The bitset kernel assigns every transaction a dense id; sets of
    # transactions are big-int masks (bit i set = the transaction with id
    # i is a member).  The condition checkers work in this representation
    # and convert to transaction ids only at the API boundary.

    @property
    def kernel(self) -> BitClosureGraph:
        """The bitset closure kernel (read-only use: row lookups for mask
        BFS in the condition checkers)."""
        return self._closure

    @property
    def active_mask(self) -> int:
        return self._active_bits

    @property
    def completed_mask(self) -> int:
        return self._completed_bits

    @property
    def committed_mask(self) -> int:
        return self._committed_bits

    @property
    def live_mask(self) -> int:
        return self._closure.live_mask

    def id_of(self, txn: TxnId) -> int:
        """The dense kernel id of *txn*."""
        return self._closure.id_of(txn)

    def bit_of(self, txn: TxnId) -> int:
        """``1 << id_of(txn)``."""
        return self._closure.bit_of(txn)

    def mask_of(self, txns: Iterable[TxnId]) -> int:
        return self._closure.mask_of(txns)

    def unmask(self, mask: int) -> List[TxnId]:
        """The transactions whose bits are set in *mask* (id order; sort
        the result when deterministic txn order matters)."""
        return self._closure.nodes_of_mask(mask)

    def accessors_mask(
        self, entity: Entity, at_least: AccessMode = AccessMode.READ
    ) -> int:
        """Mask of transactions whose strongest executed access of
        *entity* is ≥ ``at_least`` — the one-AND witness probe."""
        index = (
            self._entity_write
            if at_least is AccessMode.WRITE
            else self._entity_any
        )
        return index.get(entity, 0)

    def future_declarers_mask(
        self, entity: Entity, at_least: AccessMode = AccessMode.READ
    ) -> int:
        index = (
            self._future_write
            if at_least is AccessMode.WRITE
            else self._future_any
        )
        return index.get(entity, 0)

    def descendants_mask(self, txn: TxnId) -> int:
        """Closure row of *txn* as a mask."""
        return self._closure.descendants_mask(txn)

    def ancestors_mask(self, txn: TxnId) -> int:
        return self._closure.ancestors_mask(txn)

    def _guard_trial(self, operation: str) -> None:
        if self._trial is not None:
            raise GraphError(
                f"{operation} is not allowed during a deletion trial; only "
                "delete() may run until rollback_trial()"
            )

    def add_transaction(
        self,
        txn: TxnId,
        state: TxnState = TxnState.ACTIVE,
        declared: Optional[Dict[Entity, AccessMode]] = None,
    ) -> None:
        """Insert a node (Rule 1).  Re-adding an existing id is an error —
        transaction ids are unique for the lifetime of a schedule."""
        self._guard_trial("add_transaction")
        if txn in self._info:
            raise TransactionStateError(f"transaction {txn!r} already present")
        if txn in self._deleted or txn in self._aborted:
            raise TransactionStateError(
                f"transaction id {txn!r} was already used and removed"
            )
        self._closure.add_node(txn)
        info = TxnInfo(
            txn=txn,
            state=state,
            future=None if declared is None else dict(declared),
        )
        self._info[txn] = info
        self._index_payload(txn, info)
        self._bump()

    def _index_payload(self, txn: TxnId, info: TxnInfo) -> None:
        """(Re)register *info* in every index: state masks and the
        executed/future entity masks."""
        bit = self._closure.bit_of(txn)
        self._index_state(bit, info.state)
        entity_any, entity_write = self._entity_any, self._entity_write
        for entity, mode in info.accesses.items():
            entity_any[entity] = entity_any.get(entity, 0) | bit
            if mode is AccessMode.WRITE:
                entity_write[entity] = entity_write.get(entity, 0) | bit
        if info.future:
            future_any, future_write = self._future_any, self._future_write
            for entity, mode in info.future.items():
                future_any[entity] = future_any.get(entity, 0) | bit
                if mode is AccessMode.WRITE:
                    future_write[entity] = future_write.get(entity, 0) | bit

    def _index_state(self, bit: int, state: TxnState) -> None:
        if state.is_active:
            self._active_bits |= bit
        if state.is_completed:
            self._completed_bits |= bit
        if state is TxnState.COMMITTED:
            self._committed_bits |= bit

    def _unindex_state(self, bit: int) -> None:
        not_bit = ~bit
        self._active_bits &= not_bit
        self._completed_bits &= not_bit
        self._committed_bits &= not_bit

    @staticmethod
    def _mask_discard(index: Dict[Entity, int], entity: Entity, bit: int) -> None:
        mask = index.get(entity)
        if mask is not None:
            mask &= ~bit
            if mask:
                index[entity] = mask
            else:
                del index[entity]

    def set_state(self, txn: TxnId, state: TxnState) -> None:
        self._guard_trial("set_state")
        info = self.info(txn)
        if info.state is state:
            return
        info.state = state
        bit = self._closure.bit_of(txn)
        self._unindex_state(bit)
        self._index_state(bit, state)
        self._bump()

    def record_access(self, txn: TxnId, entity: Entity, mode: AccessMode) -> None:
        """Merge an executed access into the payload (strongest wins)."""
        self._guard_trial("record_access")
        if self.info(txn).record(entity, mode):
            bit = self._closure.bit_of(txn)
            self._entity_any[entity] = self._entity_any.get(entity, 0) | bit
            if mode is AccessMode.WRITE:
                self._entity_write[entity] = (
                    self._entity_write.get(entity, 0) | bit
                )

    def consume_future(self, txn: TxnId, entity: Entity, mode: AccessMode) -> None:
        """Predeclared bookkeeping: an executed step uses up (part of) the
        declared future access of *entity*.

        We keep the declaration conservative: once a step of strength equal
        to the declared strongest mode has executed, the entity's future
        entry is dropped; weaker executed steps leave the declaration in
        place (the strong access is still to come).
        """
        self._guard_trial("consume_future")
        future = self.info(txn).future
        if future is None:
            return
        declared = future.get(entity)
        if declared is not None and mode >= declared:
            del future[entity]
            self._drop_future_index(self._closure.bit_of(txn), entity)

    def clear_future(self, txn: TxnId) -> None:
        """Completion: no declared steps remain."""
        self._guard_trial("clear_future")
        info = self.info(txn)
        if info.future:
            bit = self._closure.bit_of(txn)
            for entity in info.future:
                self._drop_future_index(bit, entity)
        if info.future is not None:
            info.future = {}

    def _drop_future_index(self, bit: int, entity: Entity) -> None:
        self._mask_discard(self._future_any, entity, bit)
        self._mask_discard(self._future_write, entity, bit)

    def _drop_entity_index(self, bit: int, info: TxnInfo) -> None:
        for entity in info.accesses:
            self._mask_discard(self._entity_any, entity, bit)
            self._mask_discard(self._entity_write, entity, bit)
        if info.future:
            for entity in info.future:
                self._drop_future_index(bit, entity)

    # -- arc structure -------------------------------------------------------

    def add_arc(self, tail: TxnId, head: TxnId) -> None:
        self._guard_trial("add_arc")
        if tail not in self._info:
            raise UnknownTransactionError(tail)
        if head not in self._info:
            raise UnknownTransactionError(head)
        if self._closure.has_arc(tail, head):
            return
        self._closure.add_arc(tail, head)
        self._bump()

    def has_arc(self, tail: TxnId, head: TxnId) -> bool:
        return self._closure.has_arc(tail, head)

    def arcs(self) -> Iterator[Tuple[TxnId, TxnId]]:
        return self._closure.arcs()

    def arc_count(self) -> int:
        return self._closure.arc_count()

    def successors(self, txn: TxnId) -> FrozenSet[TxnId]:
        return self._closure.successors(txn)

    def predecessors(self, txn: TxnId) -> FrozenSet[TxnId]:
        return self._closure.predecessors(txn)

    def reaches(self, source: TxnId, target: TxnId) -> bool:
        return self._closure.reaches(source, target)

    def ancestors(self, txn: TxnId) -> FrozenSet[TxnId]:
        """All (not just tight) predecessors — nodes with a path into txn."""
        return self._closure.ancestors(txn)

    def descendants(self, txn: TxnId) -> FrozenSet[TxnId]:
        """All (not just tight) successors."""
        return self._closure.descendants(txn)

    def successors_view(self, txn: TxnId):
        """Internal successor set — read-only, no copy (hot paths)."""
        return self._closure.successors_view(txn)

    def predecessors_view(self, txn: TxnId):
        """Internal predecessor set — read-only, no copy (hot paths)."""
        return self._closure.predecessors_view(txn)

    def ancestors_view(self, txn: TxnId):
        """Internal ancestor set — read-only, no copy (hot paths)."""
        return self._closure.ancestors_view(txn)

    def descendants_view(self, txn: TxnId):
        """Internal descendant set — read-only, no copy (hot paths)."""
        return self._closure.descendants_view(txn)

    def would_close_cycle(self, tail: TxnId, head: TxnId) -> bool:
        return self._closure.would_close_cycle(tail, head)

    def would_arcs_close_cycle(self, arcs: Iterable[Tuple[TxnId, TxnId]]) -> bool:
        """Would atomically inserting all *arcs* close a cycle?

        All arcs of one scheduler step share their head (basic/multiwrite
        rules) or their tail (predeclared rules), so pairwise O(1) closure
        tests suffice: a mixed-head *and* mixed-tail step never occurs.
        """
        return any(self.would_close_cycle(tail, head) for tail, head in arcs)

    def as_digraph(self) -> DiGraph:
        """A mutable snapshot of the arc structure (for oracles/analysis)."""
        return self._closure.as_digraph()

    # -- transaction classification -------------------------------------------

    def active_transactions(self) -> FrozenSet[TxnId]:
        return frozenset(self._closure.nodes_of_mask(self._active_bits))

    def completed_transactions(self) -> FrozenSet[TxnId]:
        """Type F and C transactions (all completed ones)."""
        return frozenset(self._closure.nodes_of_mask(self._completed_bits))

    def committed_transactions(self) -> FrozenSet[TxnId]:
        return frozenset(self._closure.nodes_of_mask(self._committed_bits))

    def active_count(self) -> int:
        return self._active_bits.bit_count()

    def completed_count(self) -> int:
        return self._completed_bits.bit_count()

    def is_completed(self, txn: TxnId) -> bool:
        return self.info(txn).state.is_completed

    def deleted_transactions(self) -> FrozenSet[TxnId]:
        """Ids removed by :meth:`delete` so far (bookkeeping only)."""
        return frozenset(self._deleted)

    def is_deleted(self, txn: TxnId) -> bool:
        """Membership test against the tombstone set (no copy)."""
        return txn in self._deleted

    def aborted_transactions(self) -> FrozenSet[TxnId]:
        return frozenset(self._aborted)

    def is_aborted(self, txn: TxnId) -> bool:
        """Membership test against the aborted set (no copy)."""
        return txn in self._aborted

    # -- entity-indexed queries ------------------------------------------------

    def accessors_of(
        self,
        entity: Entity,
        at_least: AccessMode = AccessMode.READ,
    ) -> FrozenSet[TxnId]:
        """Transactions in the graph whose strongest executed access of
        *entity* is ≥ ``at_least`` — one index mask, no node scan."""
        return frozenset(
            self._closure.nodes_of_mask(self.accessors_mask(entity, at_least))
        )

    def writers_of(self, entity: Entity) -> FrozenSet[TxnId]:
        return self.accessors_of(entity, AccessMode.WRITE)

    def future_declarers_of(
        self,
        entity: Entity,
        at_least: AccessMode = AccessMode.READ,
    ) -> FrozenSet[TxnId]:
        """Transactions with a declared-but-unexecuted access of *entity*
        of strength ≥ ``at_least`` (predeclared model index)."""
        return frozenset(
            self._closure.nodes_of_mask(
                self.future_declarers_mask(entity, at_least)
            )
        )

    # -- tight / FC path queries -------------------------------------------------

    def _cached_mask(self, kind: str, txn: TxnId) -> Optional[int]:
        if self._cache_epoch != self._epoch:
            self._tight_cache.clear()
            self._cache_epoch = self._epoch
            return None
        return self._tight_cache.get((kind, txn))

    def tight_predecessors_mask(self, txn: TxnId) -> int:
        """Mask of nodes with a path into *txn* through completed
        intermediates — frontier-as-mask BFS over the closure's
        predecessor rows restricted to :meth:`completed_mask`.

        Memoized per mutation epoch: repeated queries within one policy
        sweep cost a dict lookup.
        """
        cached = self._cached_mask("tp", txn)
        if cached is None:
            if txn not in self._info:
                raise UnknownTransactionError(txn)
            cached = restricted_reach_mask(
                self._closure.pred_row,
                self._closure.id_of(txn),
                self._completed_bits,
            )
            self._tight_cache[("tp", txn)] = cached
        return cached

    def tight_successors_mask(self, txn: TxnId) -> int:
        cached = self._cached_mask("ts", txn)
        if cached is None:
            if txn not in self._info:
                raise UnknownTransactionError(txn)
            cached = restricted_reach_mask(
                self._closure.succ_row,
                self._closure.id_of(txn),
                self._completed_bits,
            )
            self._tight_cache[("ts", txn)] = cached
        return cached

    def active_tight_predecessors_mask(self, txn: TxnId) -> int:
        """The actives among the tight predecessors — C1's quantifier,
        one AND on the maintained masks."""
        return self.tight_predecessors_mask(txn) & self._active_bits

    def completed_tight_successors_mask(self, txn: TxnId) -> int:
        return self.tight_successors_mask(txn) & self._completed_bits

    def tight_predecessors(self, txn: TxnId) -> FrozenSet[TxnId]:
        """Nodes with a path into *txn* through completed intermediates.

        §3: "Transaction Ti is a tight predecessor of Tj if there is a path
        from Ti to Tj that uses only completed transactions as intermediate
        nodes."  In the multiwrite model completed = type F or C, so this
        doubles as the FC-path predecessor set.
        """
        return frozenset(
            self._closure.nodes_of_mask(self.tight_predecessors_mask(txn))
        )

    def tight_successors(self, txn: TxnId) -> FrozenSet[TxnId]:
        return frozenset(
            self._closure.nodes_of_mask(self.tight_successors_mask(txn))
        )

    def active_tight_predecessors(self, txn: TxnId) -> FrozenSet[TxnId]:
        """The actives among the tight predecessors — C1's quantifier."""
        return frozenset(
            self._closure.nodes_of_mask(
                self.active_tight_predecessors_mask(txn)
            )
        )

    def completed_tight_successors(self, txn: TxnId) -> FrozenSet[TxnId]:
        return frozenset(
            self._closure.nodes_of_mask(
                self.completed_tight_successors_mask(txn)
            )
        )

    # -- node removal ---------------------------------------------------------

    def enable_abort_impact(self) -> None:
        """Start capturing abort-impact regions (idempotent).

        The engine turns this on whenever a dirty-consuming deletion
        policy is active; standalone graph users never pay for it.
        """
        if self._abort_impact is None:
            self._abort_impact = set()

    def consume_abort_impact(self) -> Optional[set[TxnId]]:
        """Drain the accumulated abort-impact region.

        ``None`` means tracking was never enabled (callers must fall back
        to a conservative mark-all); otherwise the returned set names the
        completed transactions whose deletion condition may have flipped
        to *true* because of aborts since the last drain (some may since
        have left the graph — stale ids are harmless over-approximation).
        """
        if self._abort_impact is None:
            return None
        region = self._abort_impact
        self._abort_impact = set()
        return region

    def abort(self, txn: TxnId) -> None:
        """Remove an aborted transaction: node + incident arcs, no bypass."""
        self._guard_trial("abort")
        if txn not in self._info:
            raise UnknownTransactionError(txn)
        info = self._info[txn]
        if self._abort_impact is not None:
            # Captured on the pre-removal graph: the completed descendants
            # of the aborting transaction (its loss can cut FC-paths and
            # shed active-predecessor obligations) and of its still-active
            # ancestors — the same over-approximated region a step or
            # completion dirties.  For a cascade, each victim's region is
            # captured at its own removal; any candidate affected by the
            # cascade is a descendant of the *last* victim on its path,
            # whose region is computed while that path's non-victim
            # intermediates are still present.
            from repro.core.dirty import impacted_completed

            self._abort_impact |= impacted_completed(self, txn)
        bit = self._closure.bit_of(txn)  # before the id is recycled
        self._closure.remove_node_abort(txn)
        del self._info[txn]
        self._aborted.add(txn)
        self._unindex_state(bit)
        self._drop_entity_index(bit, info)
        self._bump()

    def delete(self, txn: TxnId) -> None:
        """The removal operation ``D(G, txn)`` (§3): contract the node.

        Only completed transactions may be removed; in the multiwrite model
        the conditions further restrict deletion to *committed* ones, which
        the condition layer (not this structural method) enforces.

        Inside a :meth:`trial_deletions` block the contraction is recorded
        on an undo log and reverted by :meth:`rollback_trial`.
        """
        info = self.info(txn)
        if not info.state.is_completed:
            raise NotCompletedError(txn, info.state)
        bit = self._closure.bit_of(txn)  # before the id is recycled
        if self._trial is not None:
            record = self._closure.contract_recording(txn)
            self._trial.append((txn, info, record))
        else:
            self._closure.contract(txn)
        del self._info[txn]
        self._deleted.add(txn)
        self._unindex_state(bit)
        self._drop_entity_index(bit, info)
        self._bump()

    def delete_set(self, txns: Iterable[TxnId]) -> None:
        """``D(G, N)``; §4: "the order of deletion of nodes in N is
        immaterial"."""
        for txn in list(txns):
            self.delete(txn)

    # -- trial deletions --------------------------------------------------------

    def trial_deletions(self) -> _DeletionTrial:
        """Run deletions on the live graph, then revert them all.

        The eager fixed-point policies use this instead of copying the
        whole graph per sweep::

            with graph.trial_deletions():
                ... graph.delete(txn) ...   # recorded on the undo log
            # here every trial deletion has been reverted exactly

        While a trial is active every *other* mutation raises
        :class:`~repro.errors.GraphError` — a trial reasons about
        deletions only.
        """
        self.begin_trial()
        return _DeletionTrial(self)

    def begin_trial(self) -> None:
        if self._trial is not None:
            raise GraphError("a deletion trial is already active")
        self._trial = []

    @property
    def in_trial(self) -> bool:
        return self._trial is not None

    def rollback_trial(self) -> None:
        """Revert every deletion since :meth:`begin_trial`, newest first."""
        log = self._trial
        if log is None:
            raise GraphError("no deletion trial is active")
        self._trial = None
        for txn, info, record in reversed(log):
            self._closure.uncontract(record)
            self._info[txn] = info
            self._deleted.discard(txn)
            self._index_payload(txn, info)
        self._bump()

    # -- copying ---------------------------------------------------------------

    def copy(self) -> "ReducedGraph":
        """An independent deep copy by direct set cloning.

        Not allowed mid-trial: a copy taken then would freeze trial
        deletions as permanent and clone detached (leaked) interner slots.

        The closure is cloned row-by-row (no arc-by-arc re-propagation
        through ``add_arc``) and the entity/state indexes are rebuilt from
        the cloned payloads; ``check_invariants`` in the property tests
        asserts the clone equals a closure rebuilt from scratch.
        """
        self._guard_trial("copy")
        clone = ReducedGraph()
        clone._closure = self._closure.copy()
        clone._info = {txn: info.copy() for txn, info in self._info.items()}
        clone._deleted = set(self._deleted)
        clone._aborted = set(self._aborted)
        for txn, info in clone._info.items():
            clone._index_payload(txn, info)
        return clone

    def reduced_by(self, txns: Iterable[TxnId]) -> "ReducedGraph":
        """A copy with ``D(G, N)`` applied — the original is untouched."""
        clone = self.copy()
        clone.delete_set(txns)
        return clone

    # -- group extraction / installation (shard migration) -----------------------

    def extract_subgraph(self, txns: Iterable[TxnId]) -> Dict[str, object]:
        """Remove a footprint group and return an installable payload.

        The group must be closed under arcs (no arc crosses its boundary)
        — which an entity-footprint group always is, since every arc
        source shares an entity with its head.  The payload carries the
        live :class:`TxnInfo` objects and the kernel's relative closure
        rows (:meth:`BitClosureGraph.extract_nodes`); transactions not
        present in the graph (already deleted/aborted, or never begun
        here) are skipped.  Deletion/abort bookkeeping stays behind: those
        ids can never be re-added anywhere.
        """
        self._guard_trial("extract_subgraph")
        order = sorted(t for t in set(txns) if t in self._info)
        bits = {txn: self._closure.bit_of(txn) for txn in order}
        kernel_part = self._closure.extract_nodes(order)
        infos: List[TxnInfo] = []
        for txn in order:
            info = self._info.pop(txn)
            infos.append(info)
            bit = bits[txn]
            self._unindex_state(bit)
            self._drop_entity_index(bit, info)
        self._bump()
        return {"infos": infos, "kernel": kernel_part}

    def install_subgraph(self, payload: Dict[str, object]) -> None:
        """Inverse of :meth:`extract_subgraph`, into *this* graph.

        Node ids are re-interned here (fresh bits); closure rows are
        installed by bit translation, payload indexes are rebuilt from
        the moved :class:`TxnInfo` objects.
        """
        self._guard_trial("install_subgraph")
        infos: List[TxnInfo] = payload["infos"]  # type: ignore[assignment]
        for info in infos:
            if info.txn in self._info:
                raise TransactionStateError(
                    f"install_subgraph: transaction {info.txn!r} already "
                    "present"
                )
            if info.txn in self._deleted or info.txn in self._aborted:
                raise TransactionStateError(
                    f"install_subgraph: transaction id {info.txn!r} was "
                    "already used and removed here"
                )
        self._closure.install_nodes(payload["kernel"])
        for info in infos:
            self._info[info.txn] = info
            self._index_payload(info.txn, info)
        self._bump()

    # -- invariants (test helper) ------------------------------------------------

    def check_invariants(self) -> None:
        """Assert every index/cache layer agrees with a from-scratch scan."""
        self._closure.check_invariants()
        if set(self._info) != set(self._closure.nodes()):
            raise GraphError("payload/kernel membership drift")
        active = completed = committed = 0
        entity_any: Dict[Entity, int] = {}
        entity_write: Dict[Entity, int] = {}
        future_any: Dict[Entity, int] = {}
        future_write: Dict[Entity, int] = {}
        for txn, info in self._info.items():
            bit = self._closure.bit_of(txn)
            if info.state.is_active:
                active |= bit
            if info.state.is_completed:
                completed |= bit
            if info.state is TxnState.COMMITTED:
                committed |= bit
            for entity, mode in info.accesses.items():
                entity_any[entity] = entity_any.get(entity, 0) | bit
                if mode is AccessMode.WRITE:
                    entity_write[entity] = entity_write.get(entity, 0) | bit
            if info.future:
                for entity, mode in info.future.items():
                    future_any[entity] = future_any.get(entity, 0) | bit
                    if mode is AccessMode.WRITE:
                        future_write[entity] = (
                            future_write.get(entity, 0) | bit
                        )
        if active != self._active_bits:
            raise GraphError("active-mask index drift")
        if completed != self._completed_bits:
            raise GraphError("completed-mask index drift")
        if committed != self._committed_bits:
            raise GraphError("committed-mask index drift")
        if entity_any != self._entity_any or entity_write != self._entity_write:
            raise GraphError("entity mask index drift")
        if future_any != self._future_any or future_write != self._future_write:
            raise GraphError("future-entity mask index drift")

    def __repr__(self) -> str:
        states = {
            "A": self._active_bits.bit_count(),
            "F/C": self._completed_bits.bit_count(),
        }
        return (
            f"ReducedGraph(nodes={len(self)}, arcs={self.arc_count()}, "
            f"active={states['A']}, completed={states['F/C']})"
        )

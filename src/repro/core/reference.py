"""Naive reference implementations of the hot-path queries and policies.

The optimized stack (entity indexes, epoch-memoized tight sets, trial
deletions — :mod:`repro.core.reduced_graph`) must return *byte-identical*
answers to the straightforward formulations it replaced.  This module keeps
those straightforward formulations alive:

* as oracles for the randomized property tests (``naive_*`` recompute every
  query from scratch, snapshot copies included);
* as the measured baseline for ``benchmarks/bench_hotpaths.py``
  (``legacy_select_*`` reproduce the pre-optimization policy evaluation,
  full graph copies and all).

This is deliberately *slow* analysis/oracle code — the ``as_digraph()`` /
``copy()`` calls here are the whole point; never import it from a
scheduler or policy hot path.

The object-set :class:`~repro.graphs.closure.ClosureGraph` lives on here
as the **reference closure kernel** (exported as
:data:`ReferenceClosureGraph`): the production stack runs on the bitset
kernel (:class:`~repro.graphs.bitclosure.BitClosureGraph`), and
:func:`reference_closure_of` rebuilds an independent set-based closure
from a live graph's plain arcs so the property tests can compare the two
row for row.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence

from repro.core.optimal import greedy_safe_deletion_set
from repro.core.predeclared_conditions import can_delete_predeclared
from repro.core.reduced_graph import ReducedGraph
from repro.errors import DeletionError, NotCompletedError, UnknownTransactionError
from repro.graphs.closure import ClosureGraph as ReferenceClosureGraph
from repro.graphs.paths import (
    has_restricted_path,
    reachable_from,
    restricted_predecessors,
    restricted_successors,
)
from repro.model.entities import Entity
from repro.model.status import AccessMode, TxnState
from repro.model.steps import TxnId
from repro.tracking import CurrencyTracker

__all__ = [
    "ReferenceClosureGraph",
    "reference_closure_of",
    "naive_tight_predecessors",
    "naive_tight_successors",
    "naive_active_tight_predecessors",
    "naive_completed_tight_successors",
    "naive_accessors_of",
    "naive_noncurrent_transactions",
    "legacy_copy",
    "NaiveGraphView",
    "legacy_select_eager_c1",
    "legacy_select_eager_c4",
    "legacy_select_eager_c3",
]


# ---------------------------------------------------------------------------
# Naive queries (fresh snapshot copy per call — the pre-optimization cost)
# ---------------------------------------------------------------------------


def _completed_predicate(graph: ReducedGraph):
    return lambda node: graph.info(node).state.is_completed


def reference_closure_of(graph: ReducedGraph) -> ReferenceClosureGraph:
    """An independent set-based closure over *graph*'s plain arcs.

    Built arc by arc through the reference kernel's own ``add_arc``
    propagation — nothing is copied from the bitset kernel's closure rows,
    so comparing the two row for row is a genuine cross-check.
    """
    mirror = ReferenceClosureGraph()
    for txn in graph.nodes():
        mirror.add_node(txn)
    for tail, head in graph.arcs():
        mirror.add_arc(tail, head)
    return mirror


def naive_tight_predecessors(graph: ReducedGraph, txn: TxnId) -> FrozenSet[TxnId]:
    """Tight predecessors via a full digraph snapshot (no cache)."""
    return restricted_predecessors(
        graph.as_digraph(), txn, _completed_predicate(graph)
    )


def naive_tight_successors(graph: ReducedGraph, txn: TxnId) -> FrozenSet[TxnId]:
    return restricted_successors(
        graph.as_digraph(), txn, _completed_predicate(graph)
    )


def naive_active_tight_predecessors(
    graph: ReducedGraph, txn: TxnId
) -> FrozenSet[TxnId]:
    return frozenset(
        node
        for node in naive_tight_predecessors(graph, txn)
        if graph.info(node).state.is_active
    )


def naive_completed_tight_successors(
    graph: ReducedGraph, txn: TxnId
) -> FrozenSet[TxnId]:
    return frozenset(
        node
        for node in naive_tight_successors(graph, txn)
        if graph.info(node).state.is_completed
    )


def naive_accessors_of(
    graph: ReducedGraph,
    entity: Entity,
    at_least: AccessMode = AccessMode.READ,
) -> FrozenSet[TxnId]:
    """Entity accessors by scanning every node (no inverted index)."""
    return frozenset(
        txn
        for txn in graph
        if graph.info(txn).accesses_at_least(entity, at_least)
    )


def naive_noncurrent_transactions(
    currency: CurrencyTracker, graph: ReducedGraph
) -> FrozenSet[TxnId]:
    """Corollary 1 selection via the per-transaction membership loop."""
    current = currency.current_transactions()
    return frozenset(
        txn for txn in graph.completed_transactions() if txn not in current
    )


def legacy_copy(graph: ReducedGraph) -> ReducedGraph:
    """The pre-optimization :meth:`ReducedGraph.copy`: rebuild the closure
    arc by arc through ``add_arc`` propagation (quadratic in practice)."""
    clone = ReducedGraph()
    digraph = graph.as_digraph()
    for txn in digraph.nodes():
        info = graph.info(txn)
        clone.add_transaction(
            txn,
            info.state,
            declared=None if info.future is None else dict(info.future),
        )
        for entity, mode in info.accesses.items():
            clone.record_access(txn, entity, mode)
        clone.info(txn).reads_from.update(info.reads_from)
    # Arc insertion order does not matter for an acyclic graph.
    for tail, head in digraph.arcs():
        clone.add_arc(tail, head)
    clone._deleted.update(graph.deleted_transactions())
    clone._aborted.update(graph.aborted_transactions())
    return clone


# ---------------------------------------------------------------------------
# Legacy policy evaluation (what the policies did before this optimization)
# ---------------------------------------------------------------------------


class NaiveGraphView:
    """A read-only facade over a :class:`ReducedGraph` that answers the
    tight-path queries naively (snapshot per call, no memoization).

    Implements exactly the surface :func:`repro.core.optimal.compute_demands`
    and :func:`repro.core.conditions.c1_violations` touch, so the greedy
    machinery can run unchanged at pre-optimization cost.  The mask-valued
    queries borrow the live graph's id assignment (ids are representation,
    not state) but compute their *contents* naively: tight sets from
    per-call snapshots, accessor masks from full node scans.
    """

    def __init__(self, graph: ReducedGraph) -> None:
        self._graph = graph

    def __contains__(self, txn: object) -> bool:
        return txn in self._graph

    def info(self, txn: TxnId):
        return self._graph.info(txn)

    def state(self, txn: TxnId) -> TxnState:
        return self._graph.state(txn)

    def completed_transactions(self) -> FrozenSet[TxnId]:
        return frozenset(
            txn
            for txn in self._graph
            if self._graph.info(txn).state.is_completed
        )

    def active_tight_predecessors(self, txn: TxnId) -> FrozenSet[TxnId]:
        return naive_active_tight_predecessors(self._graph, txn)

    def completed_tight_successors(self, txn: TxnId) -> FrozenSet[TxnId]:
        return naive_completed_tight_successors(self._graph, txn)

    # -- mask surface (naive contents over the live id assignment) ---------

    def bit_of(self, txn: TxnId) -> int:
        return self._graph.bit_of(txn)

    def mask_of(self, txns) -> int:
        return self._graph.mask_of(txns)

    def unmask(self, mask: int):
        return self._graph.unmask(mask)

    def accessors_mask(
        self, entity: Entity, at_least: AccessMode = AccessMode.READ
    ) -> int:
        return self._graph.mask_of(naive_accessors_of(self._graph, entity, at_least))

    def active_tight_predecessors_mask(self, txn: TxnId) -> int:
        return self._graph.mask_of(self.active_tight_predecessors(txn))

    def completed_tight_successors_mask(self, txn: TxnId) -> int:
        return self._graph.mask_of(self.completed_tight_successors(txn))


def legacy_select_eager_c1(
    graph: ReducedGraph, priority: Optional[Sequence[TxnId]] = None
) -> FrozenSet[TxnId]:
    """EagerC1Policy.select as it was: greedy over naive tight queries."""
    return greedy_safe_deletion_set(NaiveGraphView(graph), priority)


def legacy_select_eager_c4(graph: ReducedGraph) -> FrozenSet[TxnId]:
    """EagerC4Policy.select as it was: full graph copy + fixed point."""
    trial = legacy_copy(graph)
    chosen: set[TxnId] = set()
    progress = True
    while progress:
        progress = False
        for txn in sorted(trial.completed_transactions()):
            if can_delete_predeclared(trial, txn):
                trial.delete(txn)
                chosen.add(txn)
                progress = True
    return frozenset(chosen)


def _naive_can_delete_multiwrite(
    graph: ReducedGraph, candidate: TxnId, max_actives: int
) -> bool:
    """C3 as it was: digraph snapshot + materialized ``G − M⁺`` subgraphs."""
    import itertools

    from repro.core.multiwrite_conditions import dependents_closure

    if candidate not in graph:
        raise UnknownTransactionError(candidate)
    state = graph.state(candidate)
    if state is not TxnState.COMMITTED:
        raise NotCompletedError(candidate, state)
    actives = sorted(graph.active_transactions())
    if len(actives) > max_actives:
        raise DeletionError(
            f"C3 check needs 2^{len(actives)} abort-set evaluations; "
            f"max_actives={max_actives}"
        )
    accesses = dict(graph.info(candidate).accesses)
    if not accesses:
        return True
    is_completed = _completed_predicate(graph)
    base = graph.as_digraph()
    for size in range(len(actives) + 1):
        for abort_set in itertools.combinations(actives, size):
            closure = dependents_closure(graph, abort_set)
            surviving = base.subgraph_without(closure)
            alive = [
                node
                for node in surviving
                if node != candidate and graph.state(node).is_active
            ]
            for pred in sorted(alive):
                if not has_restricted_path(
                    surviving, pred, candidate, via=is_completed
                ):
                    continue
                reachable = reachable_from(surviving, pred)
                for entity in sorted(accesses):
                    required = accesses[entity]
                    witnessed = any(
                        other != candidate
                        and graph.info(other).accesses_at_least(entity, required)
                        for other in reachable
                    )
                    if not witnessed:
                        return False
    return True


def legacy_select_eager_c3(
    graph: ReducedGraph, max_actives: int = 12
) -> FrozenSet[TxnId]:
    """EagerC3Policy.select as it was: full copy + snapshot-based C3."""
    trial = legacy_copy(graph)
    chosen: set[TxnId] = set()
    progress = True
    while progress:
        progress = False
        for txn in sorted(trial.committed_transactions()):
            if _naive_can_delete_multiwrite(trial, txn, max_actives):
                trial.delete(txn)
                chosen.add(txn)
                progress = True
    return frozenset(chosen)

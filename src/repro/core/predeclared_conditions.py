"""Condition C4 — deletion safety with predeclared transactions (§5).

With declarations, the scheduler inserts arcs at the *first* of two
conflicting steps, so a completed transaction's vulnerability window is
different — and, remarkably, some *active* transactions already "behave as
completed" (they can never acquire new immediate predecessors, because any
newcomer would first be ordered behind their successors):

    (C4) For all active predecessors ``Tj`` of ``Ti`` and for all entities
    ``x`` accessed by ``Ti``, either

    1. ``Tj`` has another successor ``Tk (≠ Ti, Tj)`` which has accessed
       ``x`` at least as strongly as ``Ti``, or
    2. every entity ``y`` that ``Tj`` will access in the future has
       already been accessed at least as strongly by some successor
       ``Tl (≠ Ti)`` of ``Tj``.

(The second clause — the part "omitted from a preliminary version of this
paper that appeared in the PODS 86 conference" — is what Example 2's ``C``
needs to be deletable.)  Predecessor/successor here are *plain*
reachability, not tight paths.  "At least as strongly" in clause 2 compares
against ``Tj``'s **declared future mode** on ``y``: a successor that read
``y`` blocks future writers of ``y`` from sneaking in before ``Tj``'s
declared read, but only a successor that *wrote* ``y`` blocks future
readers from preceding ``Tj``'s declared write (see the Theorem 7 proof:
``Tl``'s executed step must conflict with any step conflicting with
``Tj``'s future step).

Theorem 7 proves C4 necessary and sufficient, in the multiwrite model too;
it is testable in polynomial time.

One refinement over the paper's literal statement (discovered by this
reproduction's randomized lockstep search and verified both ways): clause 1
must also accept ``Tj``'s **own executed access** of ``x`` as the witness.
With declarations, ``Tj`` can never later perform a surprise conflicting
step on ``x`` (the induced arc would contradict ``Tj ->* Ti``), so its past
access permanently orders every future conflictor behind it — exactly what
a witness provides.  The paper's own necessity gadget fails to produce a
diverging continuation in these cases, confirming the deletion is safe.
(In the basic model C1 rightly excludes ``Tj``: there, futures are unknown
and ``Tj`` itself may perform the conflicting step, which never conflicts
with ``Tj``.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.core.conditions import _require_completed
from repro.core.reduced_graph import ReducedGraph
from repro.model.entities import Entity
from repro.model.status import AccessMode
from repro.model.steps import TxnId

__all__ = [
    "C4Violation",
    "can_delete_predeclared",
    "c4_violations",
    "behaves_as_completed",
]


@dataclass(frozen=True)
class C4Violation:
    """A (predecessor, entity) pair for which both clauses of C4 fail.

    ``uncovered_future`` names one future access of the predecessor that no
    successor covers (the entity ``y`` a diverging continuation would
    exploit, per the necessity proof).
    """

    candidate: TxnId
    active_pred: TxnId
    entity: Entity
    required_mode: AccessMode
    uncovered_future: Entity

    def __str__(self) -> str:
        return (
            f"C4 violated for {self.candidate}: active predecessor "
            f"{self.active_pred} lacks both a witness for {self.entity!r} "
            f"(clause 1) and coverage of its future access of "
            f"{self.uncovered_future!r} (clause 2)"
        )


def _clause2_uncovered(
    graph: ReducedGraph,
    pred: TxnId,
    exclude: TxnId,
) -> Optional[Entity]:
    """First future access of *pred* not covered by a successor ≠ exclude;
    ``None`` means clause 2 holds (pred behaves as completed w.r.t. the
    deletion of *exclude*).

    Mask-native: the successor pool is the predecessor's closure row with
    the candidate's bit cleared, and each entity's coverage test is one
    AND against the entity's accessor mask.
    """
    future = graph.info(pred).future or {}
    if not future:
        return None
    successors = graph.descendants_mask(pred) & ~graph.bit_of(exclude)
    for entity in sorted(future):
        future_mode = future[entity]
        if not (graph.accessors_mask(entity, future_mode) & successors):
            return entity
    return None


def behaves_as_completed(graph: ReducedGraph, pred: TxnId, exclude: TxnId) -> bool:
    """Clause 2 of C4: will *pred* never acquire new immediate
    predecessors (ignoring *exclude*, the deletion candidate)?

    True when every declared-but-unexecuted access of *pred* is already
    dominated by an executed access of one of its successors: any new
    transaction conflicting with *pred*'s future is ordered behind that
    successor first, hence behind *pred*.
    """
    return _clause2_uncovered(graph, pred, exclude) is None


def c4_violations(
    graph: ReducedGraph,
    candidate: TxnId,
    first_only: bool = False,
) -> List[C4Violation]:
    """All (predecessor, entity) pairs refuting C4 (empty = deletable)."""
    _require_completed(graph, candidate)
    violations: List[C4Violation] = []
    accesses = graph.info(candidate).accesses
    candidate_bit = graph.bit_of(candidate)
    active_preds = sorted(
        graph.unmask(graph.ancestors_mask(candidate) & graph.active_mask)
    )
    for pred in active_preds:
        uncovered = _clause2_uncovered(graph, pred, candidate)
        if uncovered is None:
            continue  # clause 2 holds for every entity x
        # Clause 1 witnesses: successors of Tj — and Tj itself.  The paper
        # states "another successor Tk (≠ Ti, Tj)", but Tj's own *executed*
        # access of x protects just as well: any new transaction whose step
        # conflicts with Ti's access of x also conflicts with Tj's, so the
        # arc Tj -> Tn orders it behind Tj directly and every cycle the
        # original graph would catch survives in the reduced one.  (Tj
        # cannot have a *declared future* conflicting access of x — that
        # arc would run Ti -> Tj, contradicting Tj ->* Ti acyclicity — so
        # unlike the basic model, Tj can never spring a surprise step on
        # x.)  Without this refinement the Theorem 7 necessity gadget
        # fails to diverge exactly in these cases, as our randomized
        # lockstep search discovered; see DESIGN.md §3.
        witnesses = (
            graph.descendants_mask(pred) | graph.bit_of(pred)
        ) & ~candidate_bit
        for entity in sorted(accesses):
            required = accesses[entity]
            if not (graph.accessors_mask(entity, required) & witnesses):
                violations.append(
                    C4Violation(candidate, pred, entity, required, uncovered)
                )
                if first_only:
                    return violations
    return violations


def can_delete_predeclared(graph: ReducedGraph, candidate: TxnId) -> bool:
    """Condition C4 (Theorem 7): is the single deletion of *candidate*
    safe under the predeclared scheduler?

    >>> from repro.model.status import AccessMode as M, TxnState
    >>> g = ReducedGraph()  # Example 2 / Fig. 4
    >>> g.add_transaction("A", declared={"u": M.READ, "z": M.READ,
    ...                                  "y": M.READ})
    >>> g.add_transaction("B"); g.add_transaction("C")
    >>> for t, e, m in [("A", "u", M.READ), ("A", "z", M.READ),
    ...                 ("B", "y", M.READ), ("B", "u", M.WRITE),
    ...                 ("C", "x", M.WRITE), ("C", "z", M.WRITE)]:
    ...     g.record_access(t, e, m)
    >>> g.consume_future("A", "u", M.READ); g.consume_future("A", "z", M.READ)
    >>> g.add_arc("A", "B"); g.add_arc("A", "C")
    >>> g.set_state("B", TxnState.COMMITTED)
    >>> g.set_state("C", TxnState.COMMITTED)
    >>> can_delete_predeclared(g, "B"), can_delete_predeclared(g, "C")
    (False, True)
    """
    return not c4_violations(graph, candidate, first_only=True)

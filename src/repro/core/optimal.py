"""The Theorem 5 optimization problem: maximum safe deletion sets.

Let ``M`` be the set of completed transactions satisfying C1.  Every safely
deletable set is a subset of ``M`` (Theorem 3), and a subset ``N ⊆ M`` is
safe iff condition C2 holds (Theorem 4) — equivalently, in the *demand /
witness* view used here:

* each candidate ``Ti`` carries **demands**, one per (active tight
  predecessor ``Tj``, accessed entity ``x``) pair;
* the **witness set** of a demand is the set of completed tight successors
  of ``Tj`` (≠ ``Ti``) accessing ``x`` at least as strongly as ``Ti``;
* ``N`` is safe iff every demand of every member keeps at least one
  witness **outside** ``N``.

Demands with a witness that is not itself a candidate are auto-satisfied
(that witness can never be deleted), so only witnesses inside ``M`` are
tracked.  Finding the maximum safe ``N`` is NP-complete (Theorem 5, by
reduction from SET COVER — see :mod:`repro.reductions.thm5`); this module
provides:

* :func:`maximum_safe_deletion_set` — exact branch-and-bound over
  delete/keep decisions with witness counting;
* :func:`greedy_safe_deletion_set` — the linear-time greedy baseline
  (equivalent to repeatedly deleting any transaction that C1 admits in the
  current reduced graph, per Theorem 4's proof).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.conditions import c1_violations
from repro.core.reduced_graph import ReducedGraph
from repro.errors import DeletionError
from repro.model.entities import Entity
from repro.model.status import AccessMode
from repro.model.steps import TxnId

__all__ = [
    "DeletionDemands",
    "compute_demands",
    "greedy_safe_deletion_set",
    "maximum_safe_deletion_set",
]


@dataclass
class DeletionDemands:
    """The demand/witness structure of a reduced graph.

    Attributes
    ----------
    candidates:
        ``M`` — completed transactions satisfying C1 (the only possible
        members of a safe deletion set).
    demands:
        Per candidate, the list of witness sets **restricted to
        candidates** for each demand that is not auto-satisfied by a
        non-candidate witness.  An entry may be an empty tuple only for
        non-candidates (those are excluded from ``candidates``).
    """

    candidates: Tuple[TxnId, ...]
    demands: Dict[TxnId, Tuple[FrozenSet[TxnId], ...]] = field(default_factory=dict)

    def is_safe(self, subset: Iterable[TxnId]) -> bool:
        """C2 restated: every demand of every member keeps an outside
        witness."""
        chosen = frozenset(subset)
        unknown = chosen - frozenset(self.candidates)
        if unknown:
            return False  # includes a transaction C1 already rejects
        for member in chosen:
            for witnesses in self.demands.get(member, ()):
                if witnesses <= chosen:
                    return False
        return True


def compute_demands(
    graph: ReducedGraph,
    restrict: Optional[FrozenSet[TxnId]] = None,
) -> DeletionDemands:
    """Build the demand/witness structure for *graph*.

    Witness sets are intersected with ``M``; demands already satisfied by a
    permanent (non-candidate) witness are dropped.  Candidates with an
    unsatisfiable demand (no witness at all) fail C1 and are excluded.

    ``restrict`` limits which completed transactions are C1-tested (the
    engine's dirty set): transactions outside it are assumed to still fail
    C1, which is sound when the caller knows they failed at the last sweep
    and no event since could have flipped them.  Witness pools are *not*
    restricted — they come from the full graph either way.
    """
    completed = sorted(
        graph.completed_transactions()
        if restrict is None
        else graph.completed_transactions() & restrict
    )
    # First pass: which completed transactions satisfy C1 at all?
    candidates = [
        txn for txn in completed if not c1_violations(graph, txn, first_only=True)
    ]
    candidate_set = frozenset(candidates)
    candidate_mask = graph.mask_of(candidates)
    demands: Dict[TxnId, Tuple[FrozenSet[TxnId], ...]] = {}
    successor_cache: Dict[TxnId, int] = {}
    for member in candidates:
        accesses = graph.info(member).accesses
        member_bit = graph.bit_of(member)
        member_demands: List[FrozenSet[TxnId]] = []
        for pred in sorted(
            graph.unmask(graph.active_tight_predecessors_mask(member))
        ):
            if pred not in successor_cache:
                successor_cache[pred] = (
                    graph.completed_tight_successors_mask(pred)
                )
            pool = successor_cache[pred] & ~member_bit
            for entity in sorted(accesses):
                required = accesses[entity]
                witness_mask = graph.accessors_mask(entity, required) & pool
                if not witness_mask:
                    raise DeletionError(
                        f"demand of C1-approved candidate {member!r} has no "
                        "witnesses; C1 computation is inconsistent"
                    )
                if witness_mask & ~candidate_mask:
                    continue  # permanently witnessed; no constraint
                member_demands.append(frozenset(graph.unmask(witness_mask)))
        demands[member] = tuple(member_demands)
    return DeletionDemands(tuple(candidates), demands)


def greedy_safe_deletion_set(
    graph: ReducedGraph,
    priority: Optional[Sequence[TxnId]] = None,
    restrict: Optional[FrozenSet[TxnId]] = None,
) -> FrozenSet[TxnId]:
    """A maximal (not maximum) safe deletion set, greedily.

    Candidates are tried in *priority* order (default: sorted ids); each is
    added if every demand — its own and the already-chosen members' — still
    keeps a witness outside the set.  The result always satisfies C2.
    ``restrict`` is forwarded to :func:`compute_demands` (dirty-set sweeps).
    """
    structure = compute_demands(graph, restrict=restrict)
    order = list(priority) if priority is not None else list(structure.candidates)
    candidate_set = frozenset(structure.candidates)
    chosen: set[TxnId] = set()
    # Demand records: [owner, witnesses, witnesses-still-outside-chosen].
    records: List[list] = []
    demands_of: Dict[TxnId, List[list]] = {}
    witness_in: Dict[TxnId, List[list]] = {}
    for owner, owner_demands in structure.demands.items():
        for witnesses in owner_demands:
            record = [owner, witnesses, len(witnesses)]
            records.append(record)
            demands_of.setdefault(owner, []).append(record)
            for witness in witnesses:
                witness_in.setdefault(witness, []).append(record)

    def can_choose(txn: TxnId) -> bool:
        # Every own demand needs a witness outside the (grown) chosen set;
        # txn never witnesses its own demands, so "count >= 1" suffices.
        if any(record[2] == 0 for record in demands_of.get(txn, ())):
            return False
        # Choosing txn must not strip the last outside witness from a
        # demand of an already-chosen member.
        return not any(
            record[0] in chosen and record[2] == 1
            for record in witness_in.get(txn, ())
        )

    for txn in order:
        if txn not in candidate_set or txn in chosen:
            continue
        if not can_choose(txn):
            continue
        chosen.add(txn)
        for record in witness_in.get(txn, ()):
            record[2] -= 1
    result = frozenset(chosen)
    assert structure.is_safe(result)
    return result


def maximum_safe_deletion_set(
    graph: ReducedGraph,
    max_candidates: int = 30,
) -> FrozenSet[TxnId]:
    """The exact maximum safe deletion set (NP-complete; Theorem 5).

    Branch and bound over delete/keep decisions per candidate.  State per
    demand: how many of its witnesses are still deletable-or-undecided
    ("available"); deleting the last available witness of a demand whose
    owner is already deleted fails the branch.  A simple upper bound
    (deleted so far + undecided remaining) prunes the search.

    ``max_candidates`` guards against accidental exponential runs.
    """
    structure = compute_demands(graph)
    candidates = list(structure.candidates)
    if len(candidates) > max_candidates:
        raise DeletionError(
            f"exact search over {len(candidates)} candidates exceeds "
            f"max_candidates={max_candidates} (raise it explicitly, or use "
            "greedy_safe_deletion_set)"
        )
    # Demand records: (owner, witness frozenset).  Indexed both ways.
    records: List[Tuple[TxnId, FrozenSet[TxnId]]] = []
    for owner, owner_demands in structure.demands.items():
        for witnesses in owner_demands:
            records.append((owner, witnesses))
    demands_of: Dict[TxnId, List[int]] = {txn: [] for txn in candidates}
    witness_in: Dict[TxnId, List[int]] = {txn: [] for txn in candidates}
    for index, (owner, witnesses) in enumerate(records):
        demands_of[owner].append(index)
        for witness in witnesses:
            witness_in[witness].append(index)

    kept_count = [0] * len(records)  # witnesses decided "keep"
    deleted_w = [0] * len(records)  # witnesses decided "delete"
    witness_total = [len(witnesses) for _owner, witnesses in records]
    decided: Dict[TxnId, bool] = {}  # txn -> deleted?
    best: set[TxnId] = set()
    current: set[TxnId] = set()

    def demand_can_still_be_met(index: int) -> bool:
        # kept >= 1, or some witness undecided.
        if kept_count[index] > 0:
            return True
        return deleted_w[index] < witness_total[index]

    def owner_active(index: int) -> bool:
        owner = records[index][0]
        return decided.get(owner, False)

    def try_assign(txn: TxnId, delete: bool) -> bool:
        """Apply a decision; returns False (and rolls back) on conflict."""
        decided[txn] = delete
        if delete:
            current.add(txn)
            for index in witness_in[txn]:
                deleted_w[index] += 1
            # Own demands must still be satisfiable; demands of deleted
            # owners that lost their last witness fail.
            for index in demands_of[txn]:
                if not demand_can_still_be_met(index):
                    undo_assign(txn, delete)
                    return False
            for index in witness_in[txn]:
                if owner_active(index) and not demand_can_still_be_met(index):
                    undo_assign(txn, delete)
                    return False
        else:
            for index in witness_in[txn]:
                kept_count[index] += 1
        return True

    def undo_assign(txn: TxnId, delete: bool) -> None:
        del decided[txn]
        if delete:
            current.discard(txn)
            for index in witness_in[txn]:
                deleted_w[index] -= 1
        else:
            for index in witness_in[txn]:
                kept_count[index] -= 1

    def dfs(position: int) -> None:
        nonlocal best
        if len(current) + (len(candidates) - position) <= len(best):
            return  # cannot beat the incumbent
        if position == len(candidates):
            if len(current) > len(best):
                best = set(current)
            return
        txn = candidates[position]
        # Try deleting first (maximization heuristic), then keeping.
        if try_assign(txn, True):
            dfs(position + 1)
            undo_assign(txn, True)
        try_assign(txn, False)
        dfs(position + 1)
        undo_assign(txn, False)

    dfs(0)
    result = frozenset(best)
    assert structure.is_safe(result)
    return result

"""Bounded exhaustive safety oracle.

Safety of deleting ``N`` from ``G`` quantifies over *all* continuations:

    for all continuations r, F(D(G, N), r) acyclic ⇒ F(G, r) acyclic.

That quantifier is not directly executable, but two facts make a bounded
search a meaningful oracle:

* (Lemma 2/3) a *shortest* violating continuation keeps both schedulers in
  identical states until its last step, so a lockstep run that stops at the
  first decision mismatch is sound;
* (Theorem 1, necessity) when a violation exists at all, one exists of a
  very particular small shape — at most ``|actives| · 3 + 1`` steps over
  the accessed entities plus one fresh entity and one fresh transaction.

:func:`bounded_safety_check` therefore enumerates every continuation over
that action universe up to a depth limit, running the original and reduced
schedulers in lockstep, and returns the first diverging continuation found
(or ``None``).  It is independent of the C1/C2 implementations — it knows
nothing about tight paths — which is what makes it a genuine cross-check
for Theorems 1 and 4 (experiments E2 and E4).

Cost is exponential in the depth; keep the graphs tiny (the tests use ≤ 4
transactions and ≤ 3 entities).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.reduced_graph import ReducedGraph
from repro.model.entities import Entity, EntityUniverse
from repro.model.status import AccessMode
from repro.model.steps import Begin, Read, Step, TxnId, Write
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.scheduler.events import Decision

__all__ = ["bounded_safety_check", "oracle_universe"]


def oracle_universe(graph: ReducedGraph, fresh_entities: int = 1) -> List[Entity]:
    """The entity universe a bounded search explores: everything accessed
    by a node of *graph*, plus ``fresh_entities`` new names."""
    universe = EntityUniverse(
        entity
        for txn in graph
        for entity in graph.info(txn).accesses
    )
    extra = [universe.fresh() for _ in range(fresh_entities)]
    return sorted(set(universe) - set(extra)) + extra


def _possible_steps(
    scheduler: ConflictGraphScheduler,
    entities: Sequence[Entity],
    new_txn_budget: int,
    next_new_id: int,
) -> List[Tuple[Step, int, int]]:
    """All actions available from the current lockstep state.

    Each item is ``(step, new_txn_budget_after, next_new_id_after)``.
    Actions: any active transaction reads any entity, or completes with a
    single-entity (or empty) final write; plus starting one more fresh
    transaction while the budget lasts.
    """
    actions: List[Tuple[Step, int, int]] = []
    actives = sorted(scheduler.graph.active_transactions())
    for txn in actives:
        for entity in entities:
            actions.append((Read(txn, entity), new_txn_budget, next_new_id))
            actions.append(
                (Write(txn, frozenset({entity})), new_txn_budget, next_new_id)
            )
        actions.append((Write(txn, frozenset()), new_txn_budget, next_new_id))
    if new_txn_budget > 0:
        txn = f"_N{next_new_id}"
        actions.append((Begin(txn), new_txn_budget - 1, next_new_id + 1))
    return actions


def bounded_safety_check(
    graph: ReducedGraph,
    deleted: Iterable[TxnId],
    max_depth: int = 6,
    fresh_entities: int = 1,
    max_new_txns: int = 1,
) -> Optional[List[Step]]:
    """Search for a continuation proving ``D(graph, deleted)`` unsafe.

    Returns the diverging continuation (last step included) or ``None`` if
    none exists within the bounds.  ``None`` is *evidence*, not proof, of
    safety; a returned continuation is a hard counterexample (the reduced
    scheduler accepted a step the original rejects).
    """
    deleted = list(deleted)
    entities = oracle_universe(graph, fresh_entities)

    def search(
        original: ConflictGraphScheduler,
        reduced: ConflictGraphScheduler,
        prefix: List[Step],
        budget: int,
        next_id: int,
    ) -> Optional[List[Step]]:
        if len(prefix) >= max_depth:
            return None
        for step, budget_after, next_after in _possible_steps(
            original, entities, budget, next_id
        ):
            o_clone = ConflictGraphScheduler(original.graph.copy())
            r_clone = ConflictGraphScheduler(reduced.graph.copy())
            o_result = o_clone.feed(step)
            r_result = r_clone.feed(step)
            if o_result.decision is not r_result.decision:
                if (
                    r_result.decision is Decision.ACCEPTED
                    and o_result.decision is Decision.REJECTED
                ):
                    return prefix + [step]
                # The reverse direction contradicts Lemma 2's path argument.
                raise AssertionError(
                    "reduced scheduler rejected a step the original "
                    f"accepts: {step} after {prefix}"
                )
            deeper = search(
                o_clone, r_clone, prefix + [step], budget_after, next_after
            )
            if deeper is not None:
                return deeper
        return None

    original = ConflictGraphScheduler(graph.copy())
    reduced = ConflictGraphScheduler(graph.reduced_by(deleted))
    return search(original, reduced, [], max_new_txns, 0)

"""The §4 size bound on irreducible graphs.

End of §4: *"if the number of active transactions and the size of the
database are bounded, then any irreducible graph (graph from which no
transaction can be removed) has also bounded size ... if the number of
active transactions is a and the number of entities is e, an irreducible
graph can have no more than a·e completed transactions."*

The argument: associate with every completed ``Ti`` in an irreducible graph
its nonempty set of C1-refuting witness pairs ``(Tj, x)``; no two completed
transactions can share a pair (the stronger accessor of ``x`` would
otherwise witness for the weaker), so the pairs injectively map completed
transactions into ``actives × entities``.

This module computes witness-pair maps, checks the disjointness invariant,
and exposes the bound itself for the E8 experiment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.core.conditions import C1Violation, c1_violations
from repro.core.reduced_graph import ReducedGraph
from repro.errors import DeletionError
from repro.model.entities import Entity
from repro.model.steps import TxnId

__all__ = [
    "irreducible_bound",
    "is_irreducible",
    "witness_map",
    "verify_witness_disjointness",
]


def irreducible_bound(active_count: int, entity_count: int) -> int:
    """The maximum number of completed transactions an irreducible graph
    can hold: ``a · e``."""
    return active_count * entity_count


def is_irreducible(graph: ReducedGraph) -> bool:
    """No completed transaction satisfies C1."""
    return all(
        c1_violations(graph, txn, first_only=True)
        for txn in graph.completed_transactions()
    )


def witness_map(
    graph: ReducedGraph,
) -> Dict[TxnId, FrozenSet[Tuple[TxnId, Entity]]]:
    """For each completed transaction, its set of C1-refuting pairs.

    An empty set means the transaction is deletable (and the graph is not
    irreducible).
    """
    result: Dict[TxnId, FrozenSet[Tuple[TxnId, Entity]]] = {}
    for txn in sorted(graph.completed_transactions()):
        violations = c1_violations(graph, txn)
        result[txn] = frozenset(
            (violation.active_pred, violation.entity) for violation in violations
        )
    return result


def verify_witness_disjointness(graph: ReducedGraph) -> None:
    """Assert the §4 argument on *graph*: witness-pair sets of distinct
    completed transactions are pairwise disjoint.

    Raises :class:`DeletionError` with the offending pair if the invariant
    fails (which would falsify the a·e bound argument).
    """
    owners: Dict[Tuple[TxnId, Entity], TxnId] = {}
    for txn, pairs in witness_map(graph).items():
        for pair in pairs:
            previous = owners.get(pair)
            if previous is not None and previous != txn:
                raise DeletionError(
                    f"witness pair {pair!r} shared by completed "
                    f"transactions {previous!r} and {txn!r}"
                )
            owners[pair] = txn

"""Dirty-set tracking for deletion sweeps (§4's cost argument, incremental).

§4 argues a deletion policy earns its keep only when evaluating it is cheap
relative to the growth it prevents.  Re-testing *every* completed
transaction on every sweep is not cheap; re-testing only the ones whose
condition status could have changed is.  :class:`DirtyTracker` maintains
that set for the :class:`~repro.engine.Engine` from the step outcomes the
engine already observes.

Soundness invariant (the property tests replay it on randomized workloads
across all five schedulers):

    After a sweep, every completed transaction left in the graph fails its
    single-deletion condition (the sweep ran to a fixed point / maximal
    selection).  Deleting a completed transaction never flips another
    transaction's condition from *false* to *true* (witness pools and
    clause-2 coverage only shrink; active-predecessor sets are unchanged
    because deleted nodes are completed and contraction preserves paths).
    Therefore the next sweep only needs to re-test transactions affected
    by an event that can flip false → true:

    * a transaction completing — it becomes a candidate itself, stops
      being an active predecessor of its descendants, becomes a C1/C3/C4
      witness for candidates sharing an active ancestor with it, and opens
      tight paths through itself;
    * in the step-granularity models (predeclared, multiwrite), any
      executed step — new arcs run *out of* the stepping transaction and
      even an active transaction's executed access witnesses C4/C3, so
      new witnesses can appear for every active ancestor of the stepper;
    * an abort — an active predecessor vanished (and, in the multiwrite
      model, whole FC-paths through cascade victims with it).  The nodes
      are already gone from the graph by the time the engine's observer
      runs, so the *graph* captures each victim's impacted region at
      removal time (:meth:`~repro.core.reduced_graph.ReducedGraph.abort`
      with abort-impact tracking enabled — the engine enables it whenever
      a dirty tracker is active) and the tracker drains that accumulator
      instead of resetting to all-dirty.  Every candidate an abort can
      flip false→true lies in some victim's region: shedding an active
      predecessor helps only its (tight/plain) completed descendants, and
      a cut FC-path passes through a victim whose region — computed while
      the path's surviving intermediates are still present — contains the
      candidate.  Witness pools and entity masks only *shrink* on abort,
      which can flip conditions true→false but never false→true.  When no
      accumulator is available (standalone use, pre-enable aborts) the
      tracker still falls back to marking everything.

    In all non-abort cases the affected candidates lie in the completed
    descendants of the stepping/completing transaction or of one of its
    still-active ancestors — :func:`impacted_completed` collects exactly
    that region from the maintained closure rows.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from repro.graphs.bitclosure import iter_bits
from repro.model.steps import TxnId

__all__ = ["DirtyTracker", "impacted_completed"]


def impacted_completed(graph, txn: TxnId) -> Set[TxnId]:
    """Completed transactions whose deletion condition may have flipped to
    *true* because *txn* just stepped or completed.

    The over-approximated affected region: the completed descendants of
    *txn* and of every still-active ancestor of *txn*, plus *txn* itself.
    O(active ancestors) big-int ORs — the ancestor/descendant rows are
    maintained by the closure as masks, no traversal happens.
    """
    if txn not in graph:
        return set()
    kernel = graph.kernel
    region = graph.descendants_mask(txn) | graph.bit_of(txn)
    for ancestor_id in iter_bits(graph.ancestors_mask(txn) & graph.active_mask):
        region |= kernel.desc_row(ancestor_id)
    return set(graph.unmask(region & graph.completed_mask))


class DirtyTracker:
    """Accumulates the completed transactions a policy must re-examine.

    ``granularity`` matches :attr:`DeletionPolicy.dirty_events`:
    ``"completions"`` (basic model — only completions/aborts can flip a
    condition) or ``"steps"`` (predeclared/multiwrite — any executed step
    can).  :meth:`snapshot` yields the frozen dirty set (``None`` =
    everything, the conservative state after construction, restore, or an
    abort).
    """

    def __init__(self, granularity: str) -> None:
        if granularity not in ("completions", "steps"):
            raise ValueError(
                f"unknown dirty granularity {granularity!r}; "
                "expected 'completions' or 'steps'"
            )
        self.granularity = granularity
        self._dirty: Set[TxnId] = set()
        self._all_dirty = True  # conservative until the first sweep

    # -- event intake -----------------------------------------------------------

    def observe(self, graph, result) -> None:
        """Fold one :class:`~repro.scheduler.events.StepResult` in."""
        if result.aborted:
            # Drain the graph's abort-impact accumulator even when we are
            # already all-dirty (it must not pile up between sweeps).
            consume = getattr(graph, "consume_abort_impact", None)
            region = consume() if consume is not None else None
            if region is None:
                # No accumulator (standalone graph / tracking never
                # enabled): fall back to the conservative reset.
                self.mark_all()
            elif not self._all_dirty:
                self._dirty |= region
        if self._all_dirty:
            return
        steppers: Set[TxnId] = set(result.committed)
        if self.granularity == "steps":
            step = result.step
            steppers.add(step.txn)
            for released in result.released:
                steppers.add(released.txn)
        for txn in steppers:
            self._dirty |= impacted_completed(graph, txn)

    def mark_all(self) -> None:
        """Forget everything known; the next sweep re-tests all."""
        self._all_dirty = True
        self._dirty.clear()

    def mark(self, txns: Iterable[TxnId]) -> None:
        if not self._all_dirty:
            self._dirty.update(txns)

    # -- sweep-side API ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when a sweep can be skipped outright."""
        return not self._all_dirty and not self._dirty

    def snapshot(self) -> Optional[FrozenSet[TxnId]]:
        """The dirty set to hand the policy (``None`` = no restriction)."""
        if self._all_dirty:
            return None
        return frozenset(self._dirty)

    def clear(self) -> None:
        """The sweep consumed the set; start accumulating afresh."""
        self._all_dirty = False
        self._dirty.clear()

    # -- checkpointing ------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "granularity": self.granularity,
            "all_dirty": self._all_dirty,
            "dirty": sorted(self._dirty),
        }

    @classmethod
    def from_state(cls, payload: dict) -> "DirtyTracker":
        tracker = cls(payload["granularity"])
        tracker._all_dirty = bool(payload.get("all_dirty", True))
        tracker._dirty = set(payload.get("dirty", ()))
        return tracker

    def __repr__(self) -> str:
        if self._all_dirty:
            return f"DirtyTracker({self.granularity!r}, ALL)"
        return f"DirtyTracker({self.granularity!r}, {len(self._dirty)} dirty)"

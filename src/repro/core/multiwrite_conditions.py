"""Condition C3 — deletion safety in the multiple-write-step model (§5).

With multiple write steps, transactions read dirty data and may be forced
to abort later (cascading aborts), so whether a committed ``Ti`` is still
needed depends on *which active transactions might abort*:

    (C3) For each set ``M`` of active transactions, for each entity ``x``
    accessed by ``Ti``: if ``G − M⁺`` has an FC-path from an active
    transaction ``Tj`` to ``Ti``, then it also has a path from ``Tj`` to
    some other transaction ``Tk`` that accesses ``x`` at least as strongly
    as ``Ti``.

``M⁺`` is ``M`` plus every transaction that (transitively) depends on a
member — aborting ``M`` wipes out exactly ``M⁺``.  The second path may use
nodes of any type; Lemma 4 proves C3 necessary and sufficient for the safe
deletion of a *committed* transaction, and Theorem 6 proves that deciding
its failure is NP-complete (so this checker enumerates subsets ``M``,
exponential in the number of active transactions — with pruning, and a
guard against accidentally feeding it a huge graph).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.reduced_graph import ReducedGraph
from repro.errors import DeletionError, NotCompletedError, UnknownTransactionError
from repro.graphs.paths import has_restricted_path_mask, reachable_mask
from repro.model.entities import Entity
from repro.model.status import AccessMode, TxnState
from repro.model.steps import TxnId

__all__ = [
    "C3Violation",
    "can_delete_multiwrite",
    "c3_violation_witness",
    "dependents_closure",
]


@dataclass(frozen=True)
class C3Violation:
    """A witness refuting C3: aborting ``abort_set`` (whose closure is
    ``abort_closure``) leaves an FC-path from ``active_pred`` to the
    candidate but no second path to a strong-enough ``Tk`` for ``entity``."""

    candidate: TxnId
    abort_set: FrozenSet[TxnId]
    abort_closure: FrozenSet[TxnId]
    active_pred: TxnId
    entity: Entity
    required_mode: AccessMode

    def __str__(self) -> str:
        aborts = ", ".join(sorted(self.abort_set)) or "∅"
        return (
            f"C3 violated for {self.candidate}: abort M={{{aborts}}} leaves "
            f"an FC-path {self.active_pred} ->* {self.candidate} with no "
            f"witness path for {self.entity!r} (>= {self.required_mode})"
        )


def _reverse_reads_from(graph: ReducedGraph) -> Dict[TxnId, Set[TxnId]]:
    """``target -> direct dependents`` over the graph's reads_from edges."""
    reverse: Dict[TxnId, Set[TxnId]] = {}
    for node in graph:
        for target in graph.info(node).reads_from:
            reverse.setdefault(target, set()).add(node)
    return reverse


def _closure_over(
    reverse: Dict[TxnId, Set[TxnId]], aborted: Iterable[TxnId]
) -> FrozenSet[TxnId]:
    closure: Set[TxnId] = set(aborted)
    stack = list(closure)
    while stack:
        node = stack.pop()
        for dependent in reverse.get(node, ()):
            if dependent not in closure:
                closure.add(dependent)
                stack.append(dependent)
    return frozenset(closure)


def dependents_closure(
    graph: ReducedGraph, aborted: Iterable[TxnId]
) -> FrozenSet[TxnId]:
    """``M⁺``: the aborted set plus everything transitively reading from it.

    Dependencies are the ``reads_from`` edges recorded by the multiwrite
    scheduler (``t.reads_from ∋ u`` means *t read a value u wrote before u
    committed*).
    """
    return _closure_over(_reverse_reads_from(graph), aborted)


def _check_condition_for_subgraph(
    graph: ReducedGraph,
    removed: FrozenSet[TxnId],
    candidate: TxnId,
    accesses: Dict[Entity, AccessMode],
) -> Optional[Tuple[TxnId, Entity]]:
    """Check C3's inner implication on ``G − M⁺`` (``M⁺`` = *removed*).

    The subgraph is never materialized: the searches run as mask BFS over
    the live closure adjacency rows with the *removed* bits masked out
    (``row & allowed``), and each entity's witness test is one AND against
    the entity's accessor mask.  Returns a refuting (Tj, x) pair or
    ``None`` if the implication holds for this abort choice.
    """
    kernel = graph.kernel
    allowed = ~graph.mask_of(removed)
    candidate_bit = graph.bit_of(candidate)
    via_mask = graph.completed_mask & allowed  # F or C: the FC predicate
    succ = kernel.succ_row

    def row(index: int) -> int:
        return succ(index) & allowed

    actives_alive = (
        graph.active_mask & allowed & ~candidate_bit
    )
    entities = sorted(accesses)
    for pred in sorted(graph.unmask(actives_alive)):
        pred_id = graph.id_of(pred)
        if not has_restricted_path_mask(row, pred_id, candidate_bit, via_mask):
            continue
        # Second path: plain reachability, any node types.
        reachable = reachable_mask(row, pred_id) & ~candidate_bit
        for entity in entities:
            required = accesses[entity]
            if not (graph.accessors_mask(entity, required) & reachable):
                return (pred, entity)
    return None


def c3_violation_witness(
    graph: ReducedGraph,
    candidate: TxnId,
    max_actives: int = 20,
) -> Optional[C3Violation]:
    """Search all abort sets ``M`` for a C3 violation (``None`` = safe).

    Only *committed* transactions are deletable in the multiwrite model
    (F transactions may still abort); passing an F/active candidate raises.

    The search enumerates subsets of the active transactions in increasing
    size, so the returned witness has a minimal abort set.  ``max_actives``
    guards against accidental exponential blow-ups (Theorem 6 says there is
    no general shortcut).
    """
    if candidate not in graph:
        raise UnknownTransactionError(candidate)
    state = graph.state(candidate)
    if state is not TxnState.COMMITTED:
        raise NotCompletedError(candidate, state)
    actives = sorted(graph.active_transactions())
    if len(actives) > max_actives:
        raise DeletionError(
            f"C3 check needs 2^{len(actives)} abort-set evaluations; "
            f"max_actives={max_actives} (raise it explicitly if intended)"
        )
    accesses = dict(graph.info(candidate).accesses)
    if not accesses:
        return None
    # One reverse-dependency map serves every abort-set closure below
    # (the old code rebuilt it 2^|actives| times).
    reverse = _reverse_reads_from(graph)
    for size in range(len(actives) + 1):
        for abort_set in itertools.combinations(actives, size):
            closure = _closure_over(reverse, abort_set)
            if candidate in closure:
                # A committed transaction never depends on an active one;
                # reaching here would mean corrupted reads_from data.
                raise DeletionError(
                    f"committed {candidate!r} depends on active transactions"
                )
            refuted = _check_condition_for_subgraph(
                graph, closure, candidate, accesses
            )
            if refuted is not None:
                pred, entity = refuted
                return C3Violation(
                    candidate=candidate,
                    abort_set=frozenset(abort_set),
                    abort_closure=closure,
                    active_pred=pred,
                    entity=entity,
                    required_mode=accesses[entity],
                )
    return None


def can_delete_multiwrite(
    graph: ReducedGraph,
    candidate: TxnId,
    max_actives: int = 20,
) -> bool:
    """Lemma 4: is deleting the committed *candidate* safe (C3 holds)?"""
    return c3_violation_witness(graph, candidate, max_actives) is None

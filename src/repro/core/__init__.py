"""Deletion theory: the paper's primary contribution.

* :mod:`repro.core.reduced_graph` — reduced graphs of a schedule (§4):
  conflict graphs enriched with per-transaction payloads, the removal
  operation ``D(G, N)``, and abort semantics;
* :mod:`repro.core.conditions` — Lemma 1, condition C1 (Theorem 1),
  noncurrency (Corollary 1);
* :mod:`repro.core.set_conditions` — condition C2 (Theorem 4) for set
  deletions;
* :mod:`repro.core.multiwrite_conditions` — condition C3 (Lemma 4 /
  Theorem 6) for the multiple-write-step model;
* :mod:`repro.core.predeclared_conditions` — condition C4 (Theorem 7) for
  predeclared transactions;
* :mod:`repro.core.policies` — deletion policies (Theorem 2 framework);
* :mod:`repro.core.dirty` — dirty-set tracking for incremental sweeps;
* :mod:`repro.core.reference` — naive/legacy oracle formulations of the
  hot-path queries and policies (property tests + perf baselines);
* :mod:`repro.core.optimal` — the Theorem 5 optimization problem: exact and
  greedy maximum safe deletion sets;
* :mod:`repro.core.witnesses` — constructive unsafety witnesses from the
  necessity proofs;
* :mod:`repro.core.oracle` — bounded exhaustive lockstep safety oracle;
* :mod:`repro.core.bounds` — the §4 ``a·e`` bound on irreducible graphs.
"""

from repro.core.reduced_graph import ReducedGraph, TxnInfo
from repro.core.conditions import (
    can_delete,
    c1_violations,
    has_no_active_predecessors,
    is_noncurrent,
)
from repro.core.set_conditions import can_delete_set, c2_violations
from repro.core.multiwrite_conditions import (
    can_delete_multiwrite,
    c3_violation_witness,
)
from repro.core.predeclared_conditions import (
    can_delete_predeclared,
    c4_violations,
)
from repro.core.policies import (
    DeletionPolicy,
    EagerC1Policy,
    Lemma1Policy,
    NeverDeletePolicy,
    NoncurrentPolicy,
    OptimalPolicy,
)
from repro.core.optimal import (
    greedy_safe_deletion_set,
    maximum_safe_deletion_set,
)
from repro.core.bounds import irreducible_bound, witness_map

__all__ = [
    "ReducedGraph",
    "TxnInfo",
    "can_delete",
    "c1_violations",
    "has_no_active_predecessors",
    "is_noncurrent",
    "can_delete_set",
    "c2_violations",
    "can_delete_multiwrite",
    "c3_violation_witness",
    "can_delete_predeclared",
    "c4_violations",
    "DeletionPolicy",
    "NeverDeletePolicy",
    "Lemma1Policy",
    "NoncurrentPolicy",
    "EagerC1Policy",
    "OptimalPolicy",
    "greedy_safe_deletion_set",
    "maximum_safe_deletion_set",
    "irreducible_bound",
    "witness_map",
]

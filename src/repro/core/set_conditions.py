"""Set-deletion condition C2 (Theorem 4).

Deleting a whole set ``N`` of completed transactions from a reduced graph
``G`` is safe **iff**:

    (C2) for every ``Ti`` in ``N``, for every active tight predecessor
    ``Tj`` of ``Ti``, and for every entity ``x`` accessed by ``Ti``, there
    is a completed tight successor of ``Tj`` **not in N** that accesses
    ``x`` at least as strongly as ``Ti``.

The only difference from applying C1 member-by-member is the *not in N*:
members of ``N`` cannot witness for each other.  This is what makes
Example 1 tick — ``T2`` and ``T3`` each satisfy C1 (each can witness for
the other) but ``{T2, T3}`` violates C2 (nobody outside is left to
witness).

Theorem 4's proof also shows: the deletion of ``N`` is safe iff deleting
its members one at a time (in any order) keeps each step C1-safe with
respect to the then-current reduced graph — a fact the property-based tests
exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.core.conditions import _require_completed
from repro.core.reduced_graph import ReducedGraph
from repro.model.entities import Entity
from repro.model.status import AccessMode
from repro.model.steps import TxnId

__all__ = ["C2Violation", "can_delete_set", "c2_violations"]


@dataclass(frozen=True)
class C2Violation:
    """A triple (member, active tight predecessor, entity) refuting C2."""

    member: TxnId
    active_pred: TxnId
    entity: Entity
    required_mode: AccessMode

    def __str__(self) -> str:
        return (
            f"C2 violated for {self.member} in N: predecessor "
            f"{self.active_pred} has no completed tight successor outside N "
            f"accessing {self.entity!r} >= {self.required_mode}"
        )


def c2_violations(
    graph: ReducedGraph,
    candidates: Iterable[TxnId],
    first_only: bool = False,
) -> List[C2Violation]:
    """All refuting triples for deleting the set *candidates* (empty = safe).

    Completed tight successor sets are computed once per distinct active
    tight predecessor — they do not depend on the member being checked.
    """
    members = frozenset(candidates)
    for member in members:
        _require_completed(graph, member)
    violations: List[C2Violation] = []
    successors_cache: Dict[TxnId, FrozenSet[TxnId]] = {}
    for member in sorted(members):
        accesses = graph.info(member).accesses
        if not accesses:
            continue
        for pred in sorted(graph.active_tight_predecessors(member)):
            if pred not in successors_cache:
                successors_cache[pred] = graph.completed_tight_successors(pred)
            witnesses = successors_cache[pred] - members
            for entity in sorted(accesses):
                required = accesses[entity]
                covered = any(
                    graph.info(witness).accesses_at_least(entity, required)
                    for witness in witnesses
                )
                if not covered:
                    violations.append(
                        C2Violation(member, pred, entity, required)
                    )
                    if first_only:
                        return violations
    return violations


def can_delete_set(graph: ReducedGraph, candidates: Iterable[TxnId]) -> bool:
    """Condition C2 (Theorem 4): is deleting the whole set safe?

    >>> from repro.model.status import AccessMode, TxnState
    >>> g = ReducedGraph()
    >>> for t in ("T1", "T2", "T3"):
    ...     g.add_transaction(t)
    >>> for t in ("T1", "T2", "T3"):
    ...     g.record_access(t, "x",
    ...                     AccessMode.READ if t == "T1" else AccessMode.WRITE)
    >>> g.add_arc("T1", "T2"); g.add_arc("T2", "T3")
    >>> g.set_state("T2", TxnState.COMMITTED)
    >>> g.set_state("T3", TxnState.COMMITTED)
    >>> can_delete_set(g, {"T2"}), can_delete_set(g, {"T3"})  # Example 1
    (True, True)
    >>> can_delete_set(g, {"T2", "T3"})
    False
    """
    return not c2_violations(graph, candidates, first_only=True)

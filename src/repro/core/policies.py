"""Deletion policies — the Theorem 2 framework.

A *deletion policy* is "an algorithm which given reduced graph G (the
current graph) outputs a set of (completed) nodes to be deleted" (§4); the
scheduling loop applies the scheduler's transition function ``F`` to each
arriving step and then removes ``P(G)``.  Theorem 2: the combined algorithm
accepts exactly the CSR schedules **iff** every deletion the policy performs
is safe.

Every policy here performs only safe deletions (each class documents why),
so by Theorem 2 they are all *correct*; they differ in how much they prune
and at what cost.  With the copy-free query stack (entity indexes, memoized
tight-path sets, trial deletions on the live graph — see
``repro.core.reduced_graph``) the costs per invocation are:

============================  ==========================  ============================================
policy                        criterion                   cost per invocation
============================  ==========================  ============================================
:class:`NeverDeletePolicy`    nothing                     O(1)
:class:`Lemma1Policy`         no active predecessors      O(candidates) ancestor-set probes
:class:`NoncurrentPolicy`     Corollary 1 noncurrency     O(completed) one set difference
:class:`EagerC1Policy`        maximal greedy C2 subset    O(Σ tight sets of dirty candidates), no copy
:class:`OptimalPolicy`        maximum C2 subset           exponential (Thm 5), demand build copy-free
:class:`EagerC4Policy`        repeated C4 (predeclared)   poly; live-graph trial + undo log, no copy
:class:`EagerC3Policy`        repeated C3 (multiwrite)    exp. in #active; subgraphs never materialized
============================  ==========================  ============================================

Policies are stateless and reusable; :meth:`DeletionPolicy.select` takes
the scheduler (for its graph *and* its currency tracker) and returns the
set of ids to remove — the runner then calls
``scheduler.delete_transactions(...)``.

Sweep gating (consumed by :class:`repro.engine.Engine`)
-------------------------------------------------------

Two class attributes let the engine avoid invoking a policy that provably
cannot select anything, and restrict re-examination to transactions whose
condition status may actually have changed:

* ``completion_gated`` — the policy's single-deletion condition can flip
  from unsatisfied to satisfied only when a transaction completes or
  aborts (true for every basic-model condition: new arcs only *add*
  active predecessors, and an active transaction's executed accesses never
  witness C1).  The engine skips the sweep when neither happened since the
  last one.
* ``dirty_events`` — ``"completions"`` or ``"steps"``: the policy accepts
  a ``dirty`` keyword restricting which completed transactions it
  re-examines.  Soundness argument (asserted by the randomized property
  tests): every transaction the previous sweep left in the graph failed
  its condition then, deletions themselves never flip another
  transaction's condition from false to true, and the engine's
  :class:`~repro.core.dirty.DirtyTracker` over-approximates every other
  false→true trigger — so restricting the scan to the dirty set yields
  byte-identical selections.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Optional, Sequence

from repro.core.conditions import (
    has_no_active_predecessors,
    noncurrent_transactions,
)
from repro.core.multiwrite_conditions import can_delete_multiwrite
from repro.core.optimal import greedy_safe_deletion_set, maximum_safe_deletion_set
from repro.core.predeclared_conditions import can_delete_predeclared
from repro.model.status import TxnState
from repro.model.steps import TxnId

__all__ = [
    "DeletionPolicy",
    "NeverDeletePolicy",
    "Lemma1Policy",
    "NoncurrentPolicy",
    "EagerC1Policy",
    "OptimalPolicy",
    "EagerC4Policy",
    "EagerC3Policy",
]


class DeletionPolicy(ABC):
    """Base class: decide which completed transactions to forget."""

    #: Short name used in reports and benchmark tables.
    name: str = "abstract"

    #: See the module docstring ("Sweep gating").  Conservative defaults:
    #: a custom policy is always invoked with a full scan.
    completion_gated: bool = False
    dirty_events: Optional[str] = None

    @abstractmethod
    def select(
        self, scheduler, dirty: Optional[FrozenSet[TxnId]] = None
    ) -> FrozenSet[TxnId]:
        """The set of transactions to delete from ``scheduler.graph`` now.

        ``dirty`` (only passed when :attr:`dirty_events` is set) restricts
        which completed transactions are re-examined; ``None`` means all.
        """

    def apply(self, scheduler) -> FrozenSet[TxnId]:
        """Select and immediately delete; returns what was removed."""
        chosen = self.select(scheduler)
        scheduler.delete_transactions(sorted(chosen))
        return chosen

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NeverDeletePolicy(DeletionPolicy):
    """Keep everything — the degenerate policy whose unbounded graph growth
    motivates the paper (§1: "we cannot keep transactions indefinitely")."""

    name = "never"
    completion_gated = True  # selects nothing either way

    def select(self, scheduler, dirty=None) -> FrozenSet[TxnId]:
        return frozenset()


class Lemma1Policy(DeletionPolicy):
    """Delete completed transactions with no active predecessors.

    Safe in *every* model: such a transaction has no active (tight or
    otherwise) predecessor, so conditions C1, C3 and C4 all hold vacuously,
    and no two members interact (nothing in the set has demands at all), so
    the set deletion satisfies C2.  In the multiwrite model only committed
    members are selected (an F transaction may still abort and must keep
    its identity for the cascade).
    """

    name = "lemma1"
    # New arcs only add ancestors; actives disappear only by completing or
    # aborting — in every model.
    completion_gated = True

    def select(self, scheduler, dirty=None) -> FrozenSet[TxnId]:
        graph = scheduler.graph
        eligible = []
        for txn in graph.completed_transactions():
            info = graph.info(txn)
            if info.state is TxnState.FINISHED:
                continue  # multiwrite F transactions are not deletable
            if has_no_active_predecessors(graph, txn):
                eligible.append(txn)
        return frozenset(eligible)


class NoncurrentPolicy(DeletionPolicy):
    """Delete every noncurrent completed transaction (Corollary 1).

    Safety sketch (formalized in the test suite by checking C2 on every
    selection): for each accessed entity ``x`` of a noncurrent ``Ti``, the
    *current last writer* ``W_x`` of ``x`` is completed, never itself
    noncurrent while it remains last writer (so it is still in the graph),
    and sits at the head of an arc ``Ti -> W_x``; hence every active tight
    predecessor of ``Ti`` has the tight successor ``W_x ∉ N`` accessing
    ``x`` maximally.  Requires the *basic* model: currency is tracked from
    accepted atomic final writes, which aborts can never retract.
    """

    name = "noncurrent"
    # In the basic/certifier models currency is lost only at a write,
    # which always completes (or certifies) its transaction.
    completion_gated = True

    def select(self, scheduler, dirty=None) -> FrozenSet[TxnId]:
        return noncurrent_transactions(scheduler.currency, scheduler.graph)


class EagerC1Policy(DeletionPolicy):
    """Delete a maximal greedy C2-safe subset every time (basic model)."""

    name = "eager-c1"
    completion_gated = True
    # Basic model: an active transaction's accesses never witness C1 and
    # arcs only point *into* active transactions, so C1 status flips only
    # at completions and aborts.
    dirty_events = "completions"

    def __init__(self, priority: Optional[Sequence[TxnId]] = None) -> None:
        self._priority = priority

    def select(self, scheduler, dirty=None) -> FrozenSet[TxnId]:
        return greedy_safe_deletion_set(
            scheduler.graph, self._priority, restrict=dirty
        )


class OptimalPolicy(DeletionPolicy):
    """Delete a *maximum* safe subset (exact, exponential — Theorem 5).

    Practical only on small graphs; exists so experiments can measure how
    much the greedy policy leaves on the table.
    """

    name = "optimal"
    completion_gated = True  # basic model, same argument as eager-c1

    def __init__(self, max_candidates: int = 30) -> None:
        self._max_candidates = max_candidates

    def select(self, scheduler, dirty=None) -> FrozenSet[TxnId]:
        return maximum_safe_deletion_set(
            scheduler.graph, max_candidates=self._max_candidates
        )


class EagerC4Policy(DeletionPolicy):
    """Repeatedly delete any transaction C4 admits (predeclared model).

    Theorem 2 covers sequences of single safe deletions, so the selection
    is computed by simulation: delete one admissible transaction,
    re-evaluate, repeat to a fixed point.  The simulation runs as a
    *trial* on the live graph — deletions go on an undo log and are
    reverted when the fixed point is reached, instead of copying the
    whole graph per sweep.
    """

    name = "eager-c4"
    # Predeclared arcs run *out of* the stepping transaction and executed
    # accesses of actives do witness C4, so any step can flip C4 status.
    dirty_events = "steps"

    def select(self, scheduler, dirty=None) -> FrozenSet[TxnId]:
        graph = scheduler.graph
        chosen: set[TxnId] = set()
        with graph.trial_deletions():
            progress = True
            while progress:
                progress = False
                for txn in sorted(graph.completed_transactions()):
                    if dirty is not None and txn not in dirty:
                        continue
                    if can_delete_predeclared(graph, txn):
                        graph.delete(txn)
                        chosen.add(txn)
                        progress = True
        return frozenset(chosen)


class EagerC3Policy(DeletionPolicy):
    """Repeatedly delete any committed transaction C3 admits (multiwrite).

    Each C3 test enumerates abort sets — exponential in the number of
    active transactions (Theorem 6 says that is unavoidable in general);
    ``max_actives`` bounds the damage.  Like :class:`EagerC4Policy`, the
    fixed point runs as a trial on the live graph (undo log, no copy).
    """

    name = "eager-c3"
    dirty_events = "steps"

    def __init__(self, max_actives: int = 12) -> None:
        self._max_actives = max_actives

    def select(self, scheduler, dirty=None) -> FrozenSet[TxnId]:
        graph = scheduler.graph
        chosen: set[TxnId] = set()
        with graph.trial_deletions():
            progress = True
            while progress:
                progress = False
                for txn in sorted(graph.committed_transactions()):
                    if dirty is not None and txn not in dirty:
                        continue
                    if can_delete_multiwrite(
                        graph, txn, max_actives=self._max_actives
                    ):
                        graph.delete(txn)
                        chosen.add(txn)
                        progress = True
        return frozenset(chosen)

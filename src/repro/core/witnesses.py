"""Constructive unsafety witnesses — the necessity proofs, executable.

Theorem 1's necessity direction does not merely assert that a C1-violating
deletion is unsafe; it *constructs* a continuation on which the reduced and
the original scheduler diverge.  This module implements those constructions
so the test suite and the benchmarks can run them:

* :func:`basic_witness_continuation` — the §3 gadget: all active
  transactions except the violating predecessor ``Tj`` read a fresh entity
  ``y``; a new transaction writes ``y``; the others then try to write ``y``
  and abort; finally ``Tj`` performs the one conflicting step on ``x`` that
  closes a cycle through ``Ti`` in the conflict graph but not in the
  reduced graph.

* :func:`predeclared_witness_continuation` — the Theorem 7 gadget:
  complete every active non-successor of ``Tj`` in topological order, then
  run a fresh two-step transaction touching ``x`` and the uncovered future
  entity ``y`` in the weakest conflicting modes; the original scheduler
  must delay its second step, the reduced one lets it through.

* :func:`check_divergence` / :func:`check_predeclared_divergence` — run
  original and reduced schedulers in lockstep over a continuation and
  report the first step where their decisions differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.conditions import C1Violation, c1_violations
from repro.core.predeclared_conditions import C4Violation, c4_violations
from repro.core.reduced_graph import ReducedGraph
from repro.errors import DeletionError
from repro.graphs.cycles import topological_order
from repro.model.entities import EntityUniverse
from repro.model.status import AccessMode
from repro.model.steps import (
    Begin,
    BeginDeclared,
    Finish,
    Read,
    Step,
    TxnId,
    Write,
    WriteItem,
)
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.scheduler.events import Decision
from repro.scheduler.predeclared import PredeclaredScheduler

__all__ = [
    "Divergence",
    "basic_witness_continuation",
    "multiwrite_witness_continuation",
    "predeclared_witness_continuation",
    "check_divergence",
    "check_multiwrite_divergence",
    "check_predeclared_divergence",
]


@dataclass(frozen=True)
class Divergence:
    """First step where the original and reduced schedulers disagree."""

    step: Step
    original_decision: Decision
    reduced_decision: Decision

    def __str__(self) -> str:
        return (
            f"divergence at {self.step}: original={self.original_decision}, "
            f"reduced={self.reduced_decision}"
        )


def _fresh_universe(graph: ReducedGraph) -> EntityUniverse:
    entities: set[str] = set()
    for txn in graph:
        info = graph.info(txn)
        entities.update(info.accesses)
        if info.future:
            entities.update(info.future)
    return EntityUniverse(entities)


def _fresh_txn_id(graph: ReducedGraph, prefix: str = "_W") -> TxnId:
    counter = 0
    existing = set(graph.nodes()) | graph.deleted_transactions() | graph.aborted_transactions()
    while f"{prefix}{counter}" in existing:
        counter += 1
    return f"{prefix}{counter}"


def basic_witness_continuation(
    graph: ReducedGraph,
    candidate: TxnId,
    violation: Optional[C1Violation] = None,
) -> List[Step]:
    """The Theorem 1 necessity continuation ``r = s·t`` for *candidate*.

    If *violation* is not given, the first C1 violation is used; raises
    :class:`DeletionError` when C1 actually holds (no witness exists —
    that is the sufficiency direction).
    """
    if violation is None:
        found = c1_violations(graph, candidate, first_only=True)
        if not found:
            raise DeletionError(
                f"{candidate!r} satisfies C1; no unsafety witness exists"
            )
        violation = found[0]
    pred = violation.active_pred
    entity = violation.entity
    mode = violation.required_mode
    universe = _fresh_universe(graph)
    y = universe.fresh()
    steps: List[Step] = []
    other_actives = sorted(graph.active_transactions() - {pred})
    # s: abort every active transaction except Tj via the fresh entity y.
    for txn in other_actives:
        steps.append(Read(txn, y))
    if other_actives:
        helper = _fresh_txn_id(graph)
        steps.append(Begin(helper))
        steps.append(Write(helper, frozenset({y})))
        for txn in other_actives:
            steps.append(Write(txn, frozenset({y})))
    # t: the one conflicting step on x.  "If Ti reads but does not write x
    # then Tj writes x; if Ti writes x then Tj reads x."
    if mode is AccessMode.WRITE:
        steps.append(Read(pred, entity))
    else:
        steps.append(Write(pred, frozenset({entity})))
    return steps


def check_divergence(
    graph: ReducedGraph,
    deleted: Sequence[TxnId],
    continuation: Sequence[Step],
) -> Optional[Divergence]:
    """Run original-vs-reduced conflict schedulers in lockstep.

    The original scheduler starts from a copy of *graph*; the reduced one
    from ``D(graph, deleted)``.  Both are fed *continuation* until the
    first decision mismatch, which is returned (``None`` if they agree
    throughout).  By Lemma 2, stopping at the first disagreement is
    exactly right: up to that point the two runs are in identical abort
    states.
    """
    original = ConflictGraphScheduler(graph.copy())
    reduced = ConflictGraphScheduler(graph.reduced_by(deleted))
    for step in continuation:
        result_original = original.feed(step)
        result_reduced = reduced.feed(step)
        if result_original.decision is not result_reduced.decision:
            return Divergence(
                step, result_original.decision, result_reduced.decision
            )
    return None


# ---------------------------------------------------------------------------
# Multiwrite model (Lemma 4)
# ---------------------------------------------------------------------------


def multiwrite_witness_continuation(
    graph: ReducedGraph,
    candidate: TxnId,
    violation=None,
) -> List[Step]:
    """The Lemma 4 necessity continuation for the multiwrite model.

    The proof is "similar to the proof of Theorem 1", with the abort set
    made real: a C3 violation names a set ``M`` of active transactions
    whose abort (cascading to ``M⁺``) leaves an FC-path from ``Tj`` to the
    candidate but no witness path.  The continuation:

    1. aborts every member of ``M`` via the fresh-entity gadget (each
       reads ``y``, a helper writes ``y``, each then writes ``y``, closing
       a 2-cycle), letting the cascade remove ``M⁺``;
    2. has ``Tj`` perform the one access of ``x`` that conflicts with the
       candidate's — closing a cycle through the candidate in the
       original graph while the reduced graph, lacking both the candidate
       and any witness, accepts.
    """
    from repro.core.multiwrite_conditions import c3_violation_witness

    if violation is None:
        violation = c3_violation_witness(graph, candidate)
        if violation is None:
            raise DeletionError(
                f"{candidate!r} satisfies C3; no unsafety witness exists"
            )
    pred = violation.active_pred
    entity = violation.entity
    mode = violation.required_mode
    universe = _fresh_universe(graph)
    y = universe.fresh()
    steps: List[Step] = []
    doomed = sorted(violation.abort_set)
    for txn in doomed:
        steps.append(Read(txn, y))
    if doomed:
        helper = _fresh_txn_id(graph, prefix="_H")
        steps.append(Begin(helper))
        steps.append(WriteItem(helper, y))
        for txn in doomed:
            steps.append(WriteItem(txn, y))
    if mode is AccessMode.WRITE:
        steps.append(Read(pred, entity))
    else:
        steps.append(WriteItem(pred, entity))
    return steps


def check_multiwrite_divergence(
    graph: ReducedGraph,
    deleted: Sequence[TxnId],
    continuation: Sequence[Step],
) -> Optional[Divergence]:
    """Lockstep original-vs-reduced run for the multiwrite scheduler."""
    from repro.scheduler.multiwrite import MultiwriteScheduler

    original = MultiwriteScheduler(graph.copy())
    reduced = MultiwriteScheduler(graph.reduced_by(deleted))
    for step in continuation:
        result_original = original.feed(step)
        result_reduced = reduced.feed(step)
        if result_original.decision is not result_reduced.decision:
            return Divergence(
                step, result_original.decision, result_reduced.decision
            )
        if set(result_original.aborted) != set(result_reduced.aborted):
            return Divergence(
                step, result_original.decision, result_reduced.decision
            )
    return None


# ---------------------------------------------------------------------------
# Predeclared model (Theorem 7)
# ---------------------------------------------------------------------------


def predeclared_witness_continuation(
    graph: ReducedGraph,
    candidate: TxnId,
    violation: Optional[C4Violation] = None,
) -> List[Step]:
    """The Theorem 7 necessity continuation for *candidate*.

    Phase 1 completes every active transaction that is **not** a successor
    of the violating predecessor ``Tj`` (serially, in a topological order
    of the current graph); phase 2 starts a fresh transaction accessing
    ``x`` and then the uncovered future entity ``y``, each in the weakest
    mode conflicting with, respectively, the candidate's access of ``x``
    and ``Tj``'s declared future access of ``y``.
    """
    if violation is None:
        found = c4_violations(graph, candidate, first_only=True)
        if not found:
            raise DeletionError(
                f"{candidate!r} satisfies C4; no unsafety witness exists"
            )
        violation = found[0]
    pred = violation.active_pred
    entity = violation.entity
    y = violation.uncovered_future
    steps: List[Step] = []
    successors = graph.descendants(pred)
    non_successors = [
        txn
        for txn in graph.active_transactions()
        if txn not in successors and txn != pred
    ]
    order = topological_order(graph.as_digraph())
    rank = {txn: index for index, txn in enumerate(order)}
    for txn in sorted(non_successors, key=rank.__getitem__):
        future = graph.info(txn).future or {}
        for future_entity in sorted(future):
            future_mode = future[future_entity]
            if future_mode.is_write:
                steps.append(WriteItem(txn, future_entity))
            else:
                steps.append(Read(txn, future_entity))
        steps.append(Finish(txn))
    # The fresh two-step transaction Tn.
    candidate_mode = violation.required_mode
    pred_future = graph.info(pred).future or {}
    y_mode = pred_future.get(y)
    if y_mode is None:
        raise DeletionError(
            f"C4 violation names uncovered future {y!r} which {pred!r} no "
            "longer declares"
        )
    # Weakest conflicting mode: against a WRITE a READ conflicts; against a
    # READ only a WRITE does.
    tn_x_mode = AccessMode.READ if candidate_mode.is_write else AccessMode.WRITE
    tn_y_mode = AccessMode.READ if y_mode.is_write else AccessMode.WRITE
    tn = _fresh_txn_id(graph, prefix="_Tn")
    if entity == y:
        # One entity plays both roles; declare the stronger conflicting mode.
        declared = {entity: max(tn_x_mode, tn_y_mode)}
        steps.append(BeginDeclared(tn, declared))
        steps.append(
            WriteItem(tn, entity)
            if declared[entity].is_write
            else Read(tn, entity)
        )
    else:
        declared = {entity: tn_x_mode, y: tn_y_mode}
        steps.append(BeginDeclared(tn, declared))
        steps.append(
            WriteItem(tn, entity) if tn_x_mode.is_write else Read(tn, entity)
        )
        steps.append(WriteItem(tn, y) if tn_y_mode.is_write else Read(tn, y))
    return steps


def check_predeclared_divergence(
    graph: ReducedGraph,
    deleted: Sequence[TxnId],
    continuation: Sequence[Step],
) -> Optional[Divergence]:
    """Lockstep original-vs-reduced run for the predeclared scheduler.

    Divergence here means one scheduler delays a step the other executes
    (the predeclared scheduler never rejects).
    """
    original = PredeclaredScheduler(graph.copy())
    reduced = PredeclaredScheduler(graph.reduced_by(deleted))
    for step in continuation:
        result_original = original.feed(step)
        result_reduced = reduced.feed(step)
        if result_original.decision is not result_reduced.decision:
            return Divergence(
                step, result_original.decision, result_reduced.decision
            )
    return None

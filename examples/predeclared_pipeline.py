#!/usr/bin/env python3
"""Predeclared scheduling: delays instead of aborts, and C4-based GC.

Walks through the paper's Example 2 (Fig. 4) step by step, shows a delayed
step being released, then streams a random predeclared workload through the
scheduler with the eager-C4 deletion policy attached — zero aborts, bounded
graph.

Run:  python examples/predeclared_pipeline.py
"""

from repro import (
    AccessMode,
    BeginDeclared,
    EagerC4Policy,
    Finish,
    PredeclaredScheduler,
    Read,
    WriteItem,
    can_delete_predeclared,
    predeclared_stream,
    run_with_policy,
)
from repro.analysis.report import ascii_table, format_series
from repro.workloads.generator import WorkloadConfig
from repro.workloads.traces import example2_steps

M = AccessMode


def part1_example2() -> None:
    print("=" * 72)
    print("Example 2 (Fig. 4): A reads u,z (will read y);")
    print("B reads y, writes u; C writes x, z.")
    print("=" * 72)
    scheduler = PredeclaredScheduler()
    for step in example2_steps():
        result = scheduler.feed(step)
        note = f"  arcs {list(result.arcs_added)}" if result.arcs_added else ""
        print(f"  {str(step):34s} -> {result.decision}{note}")
    graph = scheduler.graph
    print(f"\ngraph arcs: {sorted(graph.arcs())}; "
          f"A's remaining declared access: {graph.info('A').future}")
    print(f"C4 for B: deletable = {can_delete_predeclared(graph, 'B')} "
          "(B is A's only shield for y)")
    print(f"C4 for C: deletable = {can_delete_predeclared(graph, 'C')} "
          "(clause 2: B already read y, so nobody can sneak in before A)")


def part2_delays() -> None:
    print()
    print("=" * 72)
    print("Delays instead of aborts")
    print("=" * 72)
    scheduler = PredeclaredScheduler()
    steps = [
        BeginDeclared("P", {"x": M.READ, "y": M.READ}),
        BeginDeclared("Q", {"x": M.WRITE, "y": M.WRITE}),
        Read("P", "x"),        # arc P -> Q (Q will write x)
        WriteItem("Q", "y"),   # needs Q -> P: cycle! delayed
        Read("P", "y"),        # P's read executes; Q's write releases
        WriteItem("Q", "x"),
        Finish("P"),
        Finish("Q"),
    ]
    for step in steps:
        result = scheduler.feed(step)
        line = f"  {str(step):16s} -> {result.decision}"
        if result.blocked_on:
            line += f"  waits-for {list(result.blocked_on)}"
        if result.released:
            line += f"  releases {[str(s) for s in result.released]}"
        print(line)
    print(f"\naborts: {len(scheduler.aborted)} (the predeclared scheduler never aborts)")


def part3_streaming_gc() -> None:
    print()
    print("=" * 72)
    print("Streaming predeclared workload + eager-C4 garbage collection")
    print("=" * 72)
    config = WorkloadConfig(
        n_transactions=60,
        n_entities=10,
        multiprogramming=5,
        write_fraction=0.45,
        zipf_s=0.7,
        seed=99,
    )
    for policy, label in ((None, "no deletion"), (EagerC4Policy(), "eager-C4")):
        metrics = run_with_policy(
            PredeclaredScheduler(), predeclared_stream(config), policy,
            audit_csr=True,
        )
        print(f"\n[{label}]")
        print(ascii_table(
            ["accepted", "delayed", "aborted", "deleted", "peak graph", "final graph"],
            [[
                metrics.accepted_steps,
                metrics.delayed_steps,
                metrics.aborted_transactions,
                metrics.deleted_transactions,
                metrics.peak_graph_size,
                metrics.final_graph_size,
            ]],
        ))
        print(format_series("graph size", metrics.series("graph_size")))


if __name__ == "__main__":
    part1_example2()
    part2_delays()
    part3_streaming_gc()

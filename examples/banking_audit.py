#!/usr/bin/env python3
"""Banking workload: online transaction GC under long-running audits.

The §1 motivation in miniature.  Short transfers/deposits stream through a
conflict-graph scheduler while periodic read-only audit transactions scan
many accounts.  While an audit is active it is a tight predecessor of every
transfer that overwrote a balance it read, pinning those transfers in the
graph; the deletion policies differ sharply in how much they can forget.

Run:  python examples/banking_audit.py
"""

from repro import (
    BankingConfig,
    ConflictGraphScheduler,
    EagerC1Policy,
    Lemma1Policy,
    NeverDeletePolicy,
    NoncurrentPolicy,
    ascii_table,
    banking_stream,
    run_with_policy,
)
from repro.analysis.report import format_series, rows_from_summaries


def main() -> None:
    config = BankingConfig(
        n_accounts=12,
        n_transfers=80,
        audit_every=12,
        audit_span=8,
        zipf_s=0.9,
        multiprogramming=6,
        seed=2024,
    )
    stream = banking_stream(config)
    print(f"banking stream: {len(stream)} steps, "
          f"{len(stream.transactions())} transactions "
          f"({sum(1 for t in stream.transactions() if t.startswith('AUDIT'))} audits)")

    policies = [
        NeverDeletePolicy(),
        Lemma1Policy(),
        NoncurrentPolicy(),
        EagerC1Policy(),
    ]
    summaries = []
    series = {}
    for policy in policies:
        metrics = run_with_policy(
            ConflictGraphScheduler(), stream, policy, audit_csr=True
        )
        summaries.append(metrics.summary())
        series[policy.name] = metrics.series("graph_size")

    columns = [
        "policy", "accepted", "aborted_txns", "deleted_txns",
        "peak_graph", "mean_graph", "final_graph",
    ]
    print()
    print(ascii_table(columns, rows_from_summaries(summaries, columns),
                      title="-- policy comparison (audited: all runs CSR) --"))

    print("\n-- graph size over time -------------------------------------")
    for name, values in series.items():
        print(format_series(f"{name:11s}", values))

    print(
        "\nReading: 'never' grows with every committed transfer; 'lemma1'"
        "\nand 'noncurrent' flush between audits but stall while one is"
        "\nlive; 'eager-c1' (the paper's necessary-and-sufficient test)"
        "\nprunes everything the audits do not genuinely pin."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The NP-completeness constructions of Theorems 5 and 6, executable.

Part 1 — Theorem 5: a SET COVER instance becomes a schedule whose maximum
safe deletion set mirrors the minimum cover (max deletable = m − cover).

Part 2 — Theorem 6: a 3-CNF formula becomes the Fig. 3 multiwrite conflict
graph; the committed transaction C is safely deletable iff the formula is
UNsatisfiable, and the violating abort set *is* a satisfying assignment.

Run:  python examples/np_hardness.py
"""

from repro.analysis.report import ascii_table
from repro.core.multiwrite_conditions import c3_violation_witness
from repro.reductions.sat import CnfFormula, dpll, random_3sat
from repro.reductions.setcover import SetCoverInstance, greedy_cover, minimum_cover
from repro.reductions.thm5 import Theorem5Reduction
from repro.reductions.thm6 import Theorem6Reduction


def part1_theorem5() -> None:
    print("=" * 72)
    print("Theorem 5: SET COVER -> maximum safe deletion")
    print("=" * 72)
    instance = SetCoverInstance(
        frozenset({"a", "b", "c", "d", "e"}),
        (
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"c", "d", "e"}),
            frozenset({"a", "d"}),
            frozenset({"e"}),
        ),
    )
    reduction = Theorem5Reduction(instance)
    print(f"universe: {sorted(instance.universe)}")
    for index, subset in enumerate(instance.subsets):
        print(f"  S{index + 1} = {sorted(subset)}")
    print(f"\nschedule ({len(reduction.full_schedule())} steps): "
          f"{' '.join(str(s) for s in reduction.full_schedule()[:9])} ...")

    cover = minimum_cover(instance)
    greedy = greedy_cover(instance)
    deleted = reduction.maximum_deletable()
    kept = reduction.deletion_set_to_kept_indices(deleted)
    rows = [
        ["m (sets)", len(instance.subsets)],
        ["minimum cover", len(cover)],
        ["greedy cover", len(greedy)],
        ["max deletable transactions", len(deleted & set(reduction.set_transactions))],
        ["kept transactions (= cover)", [f"S{i + 1}" for i in kept]],
    ]
    print()
    print(ascii_table(["quantity", "value"], rows))
    measured = reduction.check_equivalence()
    print(f"\nequivalence verified: max deletable = m - min_cover "
          f"({measured['max_deletable_set_txns']} = {measured['m']} - "
          f"{measured['min_cover']})")


def part2_theorem6() -> None:
    print()
    print("=" * 72)
    print("Theorem 6: 3-SAT -> deletability of C in the Fig. 3 graph")
    print("=" * 72)
    rows = []
    for seed in range(6):
        formula = random_3sat(3, 9, seed=seed)
        reduction = Theorem6Reduction(formula)
        model = dpll(formula)
        deletable = reduction.c_is_deletable()
        rows.append(
            [
                seed,
                "SAT" if model else "UNSAT",
                "no" if deletable else "yes (must keep C)",
                "agrees" if deletable == (model is None) else "MISMATCH",
            ]
        )
    print(ascii_table(["seed", "DPLL", "C pinned?", "reduction"], rows,
                      title="random 3-CNF formulas (3 vars, 9 clauses)"))

    # Show the witness <-> assignment correspondence on one SAT instance.
    formula = CnfFormula(3, ((1, 2, 3), (-1, 2, 3)))
    reduction = Theorem6Reduction(formula)
    witness = c3_violation_witness(reduction.build_graph(), "C")
    assignment = reduction.abort_set_to_assignment(witness.abort_set)
    print(f"\nwitness abort set for C: {sorted(witness.abort_set)}")
    print(f"induced assignment:      {assignment}")
    print(f"satisfies the formula:   {formula.evaluate(assignment)}")


if __name__ == "__main__":
    part1_theorem5()
    part2_theorem6()

#!/usr/bin/env python3
"""Quickstart: the paper's Example 1, end to end.

Builds the Fig. 1 conflict graph with the real scheduler, evaluates the
deletion conditions (Lemma 1, Corollary 1, C1, C2), demonstrates the
counterintuitive both-deletable-but-not-together phenomenon, and replays
the paper's constructed counterexample continuation to *show* the unsafe
deletion misbehaving.

Run:  python examples/quickstart.py
"""

from repro import (
    Begin,
    ConflictGraphScheduler,
    Read,
    Write,
    basic_witness_continuation,
    can_delete,
    can_delete_set,
    check_divergence,
    has_no_active_predecessors,
    maximum_safe_deletion_set,
)


def main() -> None:
    print("=" * 72)
    print("Example 1 (Fig. 1): T1 reads x and stays active;")
    print("T2 then T3 read and write x and complete.")
    print("=" * 72)

    scheduler = ConflictGraphScheduler()
    steps = [
        Begin("T1"), Read("T1", "x"),
        Begin("T2"), Read("T2", "x"), Write("T2", {"x"}),
        Begin("T3"), Read("T3", "x"), Write("T3", {"x"}),
    ]
    for step in steps:
        result = scheduler.feed(step)
        print(f"  fed {str(step):12s} -> {result.decision}"
              + (f"  arcs {list(result.arcs_added)}" if result.arcs_added else ""))

    graph = scheduler.graph
    print(f"\nConflict graph: nodes={sorted(graph.nodes())}, "
          f"arcs={sorted(graph.arcs())}")

    print("\n-- Deletion conditions ------------------------------------")
    for txn in ("T2", "T3"):
        print(f"  {txn}: Lemma 1 (no active preds) = "
              f"{has_no_active_predecessors(graph, txn)},  "
              f"C1 deletable = {can_delete(graph, txn)}")
    print(f"  noncurrent T2? {not scheduler.currency.is_current('T2')} "
          f"(T3 overwrote x)")
    print(f"  can delete BOTH {{T2, T3}}? "
          f"{can_delete_set(graph, {'T2', 'T3'})}   <- the paper's subtlety")
    print(f"  maximum safe deletion set: "
          f"{sorted(maximum_safe_deletion_set(graph))}")

    print("\n-- Why deleting T2 after T3 is unsafe ----------------------")
    reduced = graph.reduced_by(["T3"])
    print(f"  after deleting T3: C1 for T2 = {can_delete(reduced, 'T2')}")
    witness = basic_witness_continuation(reduced, "T2")
    print(f"  Theorem 1's witness continuation: "
          f"{' '.join(str(s) for s in witness)}")
    divergence = check_divergence(reduced, ["T2"], witness)
    print(f"  lockstep replay: {divergence}")
    print("  -> the reduced scheduler would accept a non-serializable step.")

    print("\n-- The safe route ------------------------------------------")
    safe = graph.reduced_by(["T2"])
    print(f"  delete T2 only; future cycles reroute via T3 "
          f"(graph arcs now {sorted(safe.arcs())})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Four concurrency-control strategies on one workload.

Runs the same interleaved basic-model stream through:

* strict two-phase locking (closes transactions at commit — §1's baseline),
* the optimistic certifier (graph of completed transactions only),
* the preventive conflict-graph scheduler with no deletion,
* the preventive scheduler with the eager-C1 policy.

and prints acceptance/abort/retention statistics.  The punchline is the
paper's: locking forgets at commit but blocks and aborts more; the
conflict-graph scheduler accepts every CSR interleaving but must retain
completed transactions — unless the deletion conditions prune them.

Run:  python examples/scheduler_comparison.py
"""

from repro import (
    Certifier,
    ConflictGraphScheduler,
    EagerC1Policy,
    NeverDeletePolicy,
    StrictTwoPhaseLocking,
    WorkloadConfig,
    ascii_table,
    basic_stream,
    run_with_policy,
)


def main() -> None:
    config = WorkloadConfig(
        n_transactions=60,
        n_entities=8,
        multiprogramming=6,
        write_fraction=0.5,
        zipf_s=0.6,
        seed=7,
    )
    stream = basic_stream(config)
    print(f"workload: {len(stream)} steps, {config.n_transactions} transactions, "
          f"{config.n_entities} entities, MPL={config.multiprogramming}")

    runs = []
    locking = StrictTwoPhaseLocking()
    metrics = run_with_policy(locking, stream, audit_csr=True)
    runs.append(("strict 2PL", metrics, 0))

    certifier = Certifier()
    metrics = run_with_policy(certifier, stream, audit_csr=True)
    runs.append(("certifier (no GC)", metrics, len(certifier.graph)))

    nodelete = ConflictGraphScheduler()
    metrics = run_with_policy(nodelete, stream, NeverDeletePolicy(), audit_csr=True)
    runs.append(("conflict graph (never delete)", metrics, len(nodelete.graph)))

    pruned = ConflictGraphScheduler()
    metrics = run_with_policy(pruned, stream, EagerC1Policy(), audit_csr=True)
    runs.append(("conflict graph + eager-C1", metrics, len(pruned.graph)))

    rows = []
    for label, m, retained in runs:
        rows.append([
            label,
            m.accepted_steps,
            m.delayed_steps,
            m.aborted_transactions,
            m.committed_transactions,
            m.peak_graph_size,
            retained,
        ])
    print()
    print(ascii_table(
        ["scheduler", "accepted", "delayed", "aborts", "commits",
         "peak graph", "final retained"],
        rows,
        title="-- all accepted subschedules audited conflict-serializable --",
    ))

    print(
        "\nReading: 2PL retains nothing (closes at commit) but delays and"
        "\ndeadlock-aborts; the certifier and the bare conflict-graph"
        "\nscheduler accept more interleavings but hoard completed"
        "\ntransactions; eager-C1 keeps the graph as small as safety allows."
    )


if __name__ == "__main__":
    main()

"""Unit tests for ReducedGraph: payloads, D(G,N), abort-vs-delete."""

from __future__ import annotations

import pytest

from repro.core.reduced_graph import ReducedGraph, TxnInfo
from repro.errors import (
    NotCompletedError,
    TransactionStateError,
    UnknownTransactionError,
)
from repro.model.status import AccessMode, TxnState


def _three_chain() -> ReducedGraph:
    graph = ReducedGraph()
    for txn in ("T1", "T2", "T3"):
        graph.add_transaction(txn)
    graph.add_arc("T1", "T2")
    graph.add_arc("T2", "T3")
    graph.set_state("T2", TxnState.COMMITTED)
    graph.set_state("T3", TxnState.COMMITTED)
    return graph


class TestPayloads:
    def test_record_access_strongest_wins(self):
        graph = ReducedGraph()
        graph.add_transaction("T1")
        graph.record_access("T1", "x", AccessMode.READ)
        graph.record_access("T1", "x", AccessMode.WRITE)
        graph.record_access("T1", "x", AccessMode.READ)  # cannot downgrade
        assert graph.info("T1").strongest("x") is AccessMode.WRITE

    def test_accesses_at_least(self):
        info = TxnInfo("T1", accesses={"x": AccessMode.READ})
        assert info.accesses_at_least("x", AccessMode.READ)
        assert not info.accesses_at_least("x", AccessMode.WRITE)
        assert not info.accesses_at_least("y", AccessMode.READ)

    def test_duplicate_transaction_rejected(self):
        graph = ReducedGraph()
        graph.add_transaction("T1")
        with pytest.raises(TransactionStateError):
            graph.add_transaction("T1")

    def test_reused_id_after_delete_rejected(self):
        graph = _three_chain()
        graph.delete("T3")
        with pytest.raises(TransactionStateError):
            graph.add_transaction("T3")

    def test_unknown_transaction(self):
        with pytest.raises(UnknownTransactionError):
            ReducedGraph().info("ghost")

    def test_accessors_of(self):
        graph = ReducedGraph()
        for txn, mode in [("R", AccessMode.READ), ("W", AccessMode.WRITE)]:
            graph.add_transaction(txn)
            graph.record_access(txn, "x", mode)
        assert graph.accessors_of("x") == frozenset({"R", "W"})
        assert graph.writers_of("x") == frozenset({"W"})


class TestFutureBookkeeping:
    def test_consume_future_drops_at_declared_strength(self):
        graph = ReducedGraph()
        graph.add_transaction("T1", declared={"x": AccessMode.WRITE})
        graph.consume_future("T1", "x", AccessMode.READ)
        assert graph.info("T1").future == {"x": AccessMode.WRITE}
        graph.consume_future("T1", "x", AccessMode.WRITE)
        assert graph.info("T1").future == {}

    def test_clear_future(self):
        graph = ReducedGraph()
        graph.add_transaction("T1", declared={"x": AccessMode.READ})
        graph.clear_future("T1")
        assert graph.info("T1").future == {}

    def test_non_predeclared_future_is_none(self):
        graph = ReducedGraph()
        graph.add_transaction("T1")
        assert graph.info("T1").future is None


class TestDeleteVsAbort:
    def test_delete_contracts(self):
        graph = _three_chain()
        graph.delete("T2")
        assert graph.has_arc("T1", "T3")
        assert "T2" in graph.deleted_transactions()

    def test_abort_loses_paths(self):
        graph = _three_chain()
        graph.set_state("T2", TxnState.ACTIVE)
        graph.abort("T2")
        assert not graph.reaches("T1", "T3")
        assert "T2" in graph.aborted_transactions()

    def test_delete_active_rejected(self):
        graph = _three_chain()
        with pytest.raises(NotCompletedError):
            graph.delete("T1")

    def test_delete_set_order_immaterial(self):
        a = _three_chain()
        b = _three_chain()
        a.delete_set(["T2", "T3"])
        b.delete_set(["T3", "T2"])
        assert a.nodes() == b.nodes()
        assert set(a.arcs()) == set(b.arcs())

    def test_reduced_by_leaves_original_untouched(self):
        graph = _three_chain()
        reduced = graph.reduced_by(["T2"])
        assert "T2" in graph
        assert "T2" not in reduced
        assert reduced.has_arc("T1", "T3")


class TestTightPaths:
    def _graph(self) -> ReducedGraph:
        # T1(A) -> T2(C) -> T3(C); T1 -> T4(A) -> T5(C)
        graph = ReducedGraph()
        states = {
            "T1": TxnState.ACTIVE,
            "T2": TxnState.COMMITTED,
            "T3": TxnState.COMMITTED,
            "T4": TxnState.ACTIVE,
            "T5": TxnState.COMMITTED,
        }
        for txn, state in states.items():
            graph.add_transaction(txn, state)
        for tail, head in [("T1", "T2"), ("T2", "T3"), ("T1", "T4"), ("T4", "T5")]:
            graph.add_arc(tail, head)
        return graph

    def test_tight_successors_pass_completed_only(self):
        graph = self._graph()
        # From T1: T2 (direct), T3 (via completed T2), T4 (direct),
        # T5 blocked (via active T4).
        assert graph.tight_successors("T1") == frozenset({"T2", "T3", "T4"})

    def test_completed_tight_successors(self):
        graph = self._graph()
        assert graph.completed_tight_successors("T1") == frozenset({"T2", "T3"})

    def test_active_tight_predecessors(self):
        graph = self._graph()
        assert graph.active_tight_predecessors("T3") == frozenset({"T1"})
        assert graph.active_tight_predecessors("T5") == frozenset({"T4"})

    def test_finished_counts_as_completed_for_tightness(self):
        graph = self._graph()
        graph.set_state("T2", TxnState.FINISHED)
        assert "T3" in graph.tight_successors("T1")


class TestCopy:
    def test_copy_is_deep(self):
        graph = _three_chain()
        graph.record_access("T1", "x", AccessMode.READ)
        clone = graph.copy()
        clone.record_access("T1", "y", AccessMode.WRITE)
        clone.add_transaction("T9")
        assert "y" not in graph.info("T1").accesses
        assert "T9" not in graph

    def test_copy_preserves_bookkeeping(self):
        graph = _three_chain()
        graph.delete("T3")
        clone = graph.copy()
        assert clone.deleted_transactions() == frozenset({"T3"})

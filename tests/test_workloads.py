"""Tests for workload generation (zipf, generator, traces, banking)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.model.schedule import Schedule
from repro.model.status import AccessMode
from repro.workloads.banking import BankingConfig, banking_specs, banking_stream
from repro.workloads.generator import (
    WorkloadConfig,
    basic_specs,
    basic_stream,
    multiwrite_specs,
    multiwrite_stream,
    predeclared_specs,
    predeclared_stream,
)
from repro.workloads.zipf import ZipfSampler


class TestZipf:
    def test_range(self):
        sampler = ZipfSampler(10, s=1.2, seed=0)
        assert all(0 <= sampler.sample() < 10 for _ in range(300))

    def test_skew_concentrates_mass(self):
        skewed = ZipfSampler(20, s=2.0, seed=1)
        hits = sum(1 for _ in range(500) if skewed.sample() == 0)
        assert hits > 200  # rank 0 dominates at s=2

    def test_uniform_spreads(self):
        uniform = ZipfSampler(5, s=0.0, seed=2)
        seen = {uniform.sample() for _ in range(300)}
        assert seen == set(range(5))

    def test_distinct_sampling(self):
        sampler = ZipfSampler(8, s=1.0, seed=3)
        draw = sampler.sample_distinct(5)
        assert len(draw) == len(set(draw)) == 5

    def test_distinct_full_population(self):
        sampler = ZipfSampler(4, s=3.0, seed=4)
        assert sorted(sampler.sample_distinct(4)) == [0, 1, 2, 3]

    def test_too_many_distinct(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(3, seed=0).sample_distinct(4)

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(3, s=-1)


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_transactions=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(write_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadConfig(min_accesses=3, max_accesses=2)
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_entities=2, max_accesses=3)
        with pytest.raises(WorkloadError):
            WorkloadConfig(multiprogramming=0)


class TestGenerators:
    CONFIG = WorkloadConfig(
        n_transactions=12, n_entities=6, seed=9, write_fraction=0.5
    )

    def test_basic_specs_deterministic(self):
        assert basic_specs(self.CONFIG) == basic_specs(self.CONFIG)

    def test_basic_specs_count_and_names(self):
        specs = basic_specs(self.CONFIG)
        assert len(specs) == 12
        assert specs[0].txn == "T1" and specs[-1].txn == "T12"

    def test_streams_validate_protocols(self):
        basic_stream(self.CONFIG).validate_basic_model()

    def test_multiwrite_specs_modes(self):
        for spec in multiwrite_specs(self.CONFIG):
            assert 1 <= len(spec.operations) <= 4
            for mode, _entity in spec.operations:
                assert isinstance(mode, AccessMode)

    def test_predeclared_specs_distinct_entities(self):
        for spec in predeclared_specs(self.CONFIG):
            entities = [entity for _mode, entity in spec.operations]
            assert len(entities) == len(set(entities))

    def test_streams_contain_all_steps(self):
        specs = multiwrite_specs(self.CONFIG)
        stream = multiwrite_stream(self.CONFIG)
        assert len(stream) == sum(len(spec) for spec in specs)

    def test_predeclared_stream_deterministic(self):
        assert list(predeclared_stream(self.CONFIG)) == list(
            predeclared_stream(self.CONFIG)
        )

    def test_different_seeds_differ(self):
        other = WorkloadConfig(
            n_transactions=12, n_entities=6, seed=10, write_fraction=0.5
        )
        assert basic_stream(self.CONFIG) != basic_stream(other)


class TestBanking:
    def test_audits_inserted(self):
        config = BankingConfig(n_transfers=20, audit_every=5, seed=1)
        specs = banking_specs(config)
        audits = [spec for spec in specs if spec.txn.startswith("AUDIT")]
        assert len(audits) == 4
        for audit in audits:
            assert audit.writes == frozenset()
            assert len(audit.reads) == config.audit_span

    def test_transfers_read_what_they_write(self):
        config = BankingConfig(n_transfers=15, audit_every=0, seed=2)
        for spec in banking_specs(config):
            assert spec.writes <= frozenset(spec.reads)

    def test_stream_validates(self):
        banking_stream(BankingConfig(seed=3)).validate_basic_model()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BankingConfig(n_accounts=1)
        with pytest.raises(WorkloadError):
            BankingConfig(audit_span=99)
        with pytest.raises(WorkloadError):
            BankingConfig(deposit_fraction=2.0)

"""The Engine façade: event hooks, batched sweeps, laziness, stats."""

from __future__ import annotations

import pytest

from repro.analysis.runner import run_with_policy
from repro.engine import (
    BatchResult,
    CallbackObserver,
    Engine,
    EngineConfig,
    EngineObserver,
    GcStats,
    SweepReport,
)
from repro.errors import UnsafeDeletionError
from repro.model.steps import Begin, Read, Write
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    predeclared_stream,
)
from repro.workloads.traces import example1_schedule

CONFIG = WorkloadConfig(n_transactions=30, n_entities=8, seed=7)


class RecordingObserver(EngineObserver):
    """Log every hook invocation, in order."""

    def __init__(self):
        self.events = []

    def on_step(self, engine, result):
        self.events.append(("step", result.step))

    def on_abort(self, engine, result, aborted):
        self.events.append(("abort", aborted))

    def on_commit(self, engine, result, committed):
        self.events.append(("commit", committed))

    def on_delete(self, engine, deleted, step_index):
        self.events.append(("delete", deleted))

    def on_sweep(self, engine, report):
        self.events.append(("sweep", report))

    def on_step_end(self, engine, result):
        self.events.append(("step_end", result.step))


class TestEventHooks:
    def test_hooks_fire_in_documented_order(self):
        observer = RecordingObserver()
        engine = Engine(
            scheduler="conflict-graph", policy="eager-c1",
            observers=[observer],
        )
        engine.feed_batch(example1_schedule())
        kinds = [kind for kind, _ in observer.events]
        # Every step produces step ... step_end brackets.
        assert kinds.count("step") == 8
        assert kinds.count("step_end") == 8
        # Interval 1: one sweep per step — minus the ones the engine
        # skipped because nothing could have become deletable.
        assert kinds.count("sweep") == 8 - engine.sweeps_skipped
        assert kinds.count("sweep") == engine.sweeps_run > 0
        assert "commit" in kinds and "delete" in kinds
        # Within one step, step comes first and step_end last.
        first_end = kinds.index("step_end")
        assert kinds.index("step") < first_end
        assert kinds.index("sweep") < first_end

    def test_abort_hook_sees_cascade(self):
        observer = RecordingObserver()
        engine = Engine(scheduler="conflict-graph", policy="never",
                        observers=[observer])
        engine.feed_batch(
            [Begin("T1"), Read("T1", "x"), Begin("T2"), Read("T2", "x"),
             Write("T2", {"x"}), Write("T1", {"x"})]
        )
        aborts = [payload for kind, payload in observer.events if kind == "abort"]
        assert aborts == [("T1",)]

    def test_callback_observer_and_subscribe(self):
        deleted = []
        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        engine.subscribe(
            CallbackObserver(on_delete=lambda e, ids, i: deleted.extend(ids))
        )
        engine.feed_batch(example1_schedule())
        assert deleted == list(engine.stats.deleted_ids)
        assert deleted  # something was forgotten

    def test_unsubscribe_stops_events(self):
        observer = RecordingObserver()
        engine = Engine(scheduler="conflict-graph", policy="never")
        engine.subscribe(observer)
        engine.feed(Begin("T1"))
        engine.unsubscribe(observer)
        engine.feed(Read("T1", "x"))
        assert len([k for k, _ in observer.events if k == "step"]) == 1


class TestBatchedSweeps:
    @pytest.mark.parametrize("interval", [2, 5, 16])
    def test_acceptance_unchanged_by_sweep_interval(self, interval):
        """Safe deletions never change what the scheduler accepts
        (Theorem 2), so the sweep cadence must not either."""
        stream = basic_stream(CONFIG)
        per_step = Engine(scheduler="conflict-graph", policy="eager-c1")
        batched = Engine(scheduler="conflict-graph", policy="eager-c1",
                         sweep_interval=interval)
        reference = per_step.feed_batch(stream)
        batch = batched.feed_batch(stream)
        assert [r.decision for r in batch.results] == [
            r.decision for r in reference.results
        ]
        assert batched.accepted_subschedule() == per_step.accepted_subschedule()

    def test_sweep_count_amortized(self):
        stream = basic_stream(CONFIG)
        engine = Engine(scheduler="conflict-graph", policy="eager-c1",
                        sweep_interval=8)
        batch = engine.feed_batch(stream)
        assert batch.sweeps == batch.steps_fed // 8
        assert engine.stats.policy_invocations == batch.sweeps

    def test_flush_forces_trailing_sweep(self):
        engine = Engine(scheduler="conflict-graph", policy="eager-c1",
                        sweep_interval=1000)
        batch = engine.feed_batch(example1_schedule(), flush=True)
        assert batch.sweeps == 1
        assert engine.steps_since_sweep == 0
        assert batch.deleted  # the flush sweep pruned something

    def test_manual_sweep(self):
        engine = Engine(scheduler="conflict-graph", policy="eager-c1",
                        sweep_interval=1000)
        engine.feed_batch(example1_schedule())
        assert engine.stats.deletions == 0
        selected = engine.sweep()
        assert selected and engine.stats.deletions == len(selected)

    def test_batch_result_totals(self):
        stream = basic_stream(CONFIG)
        engine = Engine(scheduler="conflict-graph", policy="eager-c1",
                        sweep_interval=4)
        batch = engine.feed_batch(stream)
        assert isinstance(batch, BatchResult)
        assert batch.steps_fed == len(stream)
        assert (batch.accepted + batch.rejected + batch.delayed
                + batch.ignored) == batch.steps_fed
        assert batch.deleted == tuple(engine.stats.deleted_ids)
        assert set(batch.aborted) == set(engine.aborted)
        assert batch.summary()["sweeps"] == batch.sweeps

    def test_verify_c2_still_guards_batched_sweeps(self):
        from repro.core.policies import NeverDeletePolicy

        class RoguePolicy(NeverDeletePolicy):
            name = "rogue"

            def select(self, scheduler):
                return frozenset(scheduler.graph.completed_transactions())

        engine = Engine.from_parts(
            ConflictGraphScheduler(), RoguePolicy(),
            sweep_interval=4, verify_c2=True,
        )
        with pytest.raises(UnsafeDeletionError):
            engine.feed_batch(example1_schedule())


class TestLazyFeeding:
    def test_feed_many_interleaves_with_generator(self):
        """Regression: the input iterable must be consumed step-by-step,
        not materialized up front."""
        log = []

        def workload():
            for step in example1_schedule():
                log.append(("yield", step))
                yield step

        engine = Engine(
            scheduler="conflict-graph", policy="never",
            observers=[CallbackObserver(
                on_step=lambda e, r: log.append(("process", r.step))
            )],
        )
        batch = engine.feed_batch(workload())
        assert batch.steps_fed == 8
        # Strict alternation: yield T, process T, yield U, process U, ...
        for i in range(0, len(log), 2):
            assert log[i][0] == "yield" and log[i + 1][0] == "process"
            assert log[i][1] is log[i + 1][1]

    def test_scheduler_feed_many_accepts_generator(self):
        log = []

        class Spy(ConflictGraphScheduler):
            def feed(self, step):
                log.append(("process", step))
                return super().feed(step)

        def workload():
            for step in example1_schedule():
                log.append(("yield", step))
                yield step

        scheduler = Spy()
        results = scheduler.feed_many(workload())
        assert len(results) == 8
        assert [kind for kind, _ in log] == ["yield", "process"] * 8

    def test_run_with_policy_accepts_generator(self):
        stream = basic_stream(CONFIG)
        metrics = run_with_policy(
            "conflict-graph", iter(list(stream)), "eager-c1", audit_csr=True
        )
        total = (metrics.accepted_steps + metrics.rejected_steps
                 + metrics.delayed_steps + metrics.ignored_steps)
        assert total == len(stream)

    def test_predeclared_engine_generator(self):
        stream = predeclared_stream(
            WorkloadConfig(n_transactions=10, n_entities=5, seed=3)
        )
        engine = Engine(scheduler="predeclared", policy="eager-c4",
                        sweep_interval=4)
        batch = engine.feed_batch(iter(list(stream)))
        assert batch.steps_fed == len(stream)


class TestStats:
    def test_stats_dict_includes_deleted_ids(self):
        """Regression for the GcStats.as_dict omission: serialized stats
        must match the dataclass, deleted_ids included."""
        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        engine.feed_batch(example1_schedule())
        payload = engine.stats.as_dict()
        assert payload["deleted_ids"] == list(engine.stats.deleted_ids)
        assert payload["deleted_ids"]  # non-empty on this trace
        assert set(payload) == {
            "steps_fed", "deletions", "policy_invocations",
            "peak_graph_size", "peak_retained_completed", "deleted_ids",
        }
        assert GcStats.from_dict(payload) == engine.stats

    def test_stats_match_legacy_facade(self):
        import warnings

        stream = basic_stream(CONFIG)
        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        engine.feed_batch(stream)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.manager import GarbageCollectedScheduler

            legacy = GarbageCollectedScheduler(
                ConflictGraphScheduler(), engine.policy.__class__()
            )
        legacy.feed_many(stream)
        assert legacy.stats == engine.stats

    def test_run_with_policy_mixed_paths_model_checked(self):
        """A registry name in either slot opts into model validation, even
        when the other side is an instance (regression: the mixed paths
        used to skip the check and apply the wrong safety condition)."""
        from repro.core.policies import EagerC1Policy
        from repro.errors import IncompatiblePolicyError
        from repro.scheduler.predeclared import PredeclaredScheduler

        stream = predeclared_stream(
            WorkloadConfig(n_transactions=6, n_entities=4, seed=2)
        )
        with pytest.raises(IncompatiblePolicyError):
            run_with_policy(PredeclaredScheduler(), stream, "eager-c1")
        with pytest.raises(IncompatiblePolicyError):
            run_with_policy("predeclared", stream, EagerC1Policy())
        # Unregistered custom types stay permissive (the from_parts path).
        class LocalPolicy(EagerC1Policy):
            name = "local-c1"

        run_with_policy(
            "conflict-graph", basic_stream(CONFIG), LocalPolicy()
        )

    def test_legacy_facade_attributes_still_writable(self):
        import warnings

        from repro.engine import GcStats

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.manager import GarbageCollectedScheduler

            legacy = GarbageCollectedScheduler(ConflictGraphScheduler())
        legacy.verify_c2 = True
        legacy.stats = GcStats(steps_fed=5)
        assert legacy.stats.steps_fed == 5
        legacy.feed(Begin("T1"))
        assert legacy.stats.steps_fed == 6

    def test_run_with_policy_sweep_interval_invocations(self):
        stream = basic_stream(CONFIG)
        metrics = run_with_policy(
            "conflict-graph", stream, "eager-c1", sweep_interval=8
        )
        assert metrics.policy_invocations == len(stream) // 8

    def test_engine_config_replacement_overrides(self):
        config = EngineConfig(scheduler="conflict-graph", policy="never")
        engine = Engine(config, sweep_interval=5)
        assert engine.sweep_interval == 5
        assert engine.config.policy == "never"


class TestHookDispatchLists:
    """The _emit fast path: hooks nobody overrides are never dispatched."""

    def test_unoverridden_hooks_have_empty_handler_lists(self):
        engine = Engine(scheduler="conflict-graph", policy="never")
        # The built-in StatsObserver does not observe aborts or commits.
        assert engine._hooks["on_abort"] == []
        assert engine._hooks["on_commit"] == []
        assert engine._hooks["on_step"] != []
        assert engine._hooks["on_step_end"] != []

    def test_subscribe_and_unsubscribe_rebuild_the_lists(self):
        engine = Engine(scheduler="conflict-graph", policy="never")
        seen = []
        observer = CallbackObserver(
            on_commit=lambda e, result, committed: seen.extend(committed)
        )
        engine.subscribe(observer)
        assert len(engine._hooks["on_commit"]) == 1
        assert engine._hooks["on_abort"] == []  # still nobody
        engine.feed(Begin("T1"))
        engine.feed(Write("T1", {"x"}))
        assert seen == ["T1"]
        engine.unsubscribe(observer)
        assert engine._hooks["on_commit"] == []
        engine.feed(Begin("T2"))
        engine.feed(Write("T2", {"y"}))
        assert seen == ["T1"]  # no further dispatch

    def test_subclass_overrides_are_detected(self):
        class AbortWatcher(EngineObserver):
            def __init__(self):
                self.aborts = []

            def on_abort(self, engine, result, aborted):
                self.aborts.extend(aborted)

        watcher = AbortWatcher()
        engine = Engine(
            scheduler="conflict-graph", policy="never", observers=[watcher]
        )
        assert len(engine._hooks["on_abort"]) == 1
        for step in (Begin("T1"), Read("T1", "x"),
                     Begin("T2"), Read("T2", "x"), Write("T2", {"x"})):
            engine.feed(step)
        engine.feed(Write("T1", {"x"}))  # cycle: T1 aborts
        assert watcher.aborts == ["T1"]

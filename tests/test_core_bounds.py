"""Tests for the §4 a·e bound on irreducible graphs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.bounds import (
    irreducible_bound,
    is_irreducible,
    verify_witness_disjointness,
    witness_map,
)
from repro.core.optimal import greedy_safe_deletion_set
from repro.model.status import AccessMode as M

from tests.conftest import basic_step_streams, build_graph, graph_from_stream


class TestBoundArithmetic:
    def test_bound_value(self):
        assert irreducible_bound(3, 7) == 21
        assert irreducible_bound(0, 10) == 0


class TestIrreducibility:
    def test_fig1_reducible(self, fig1_graph):
        assert not is_irreducible(fig1_graph)

    def test_after_greedy_irreducible(self, fig1_graph):
        graph = fig1_graph.copy()
        graph.delete_set(greedy_safe_deletion_set(graph))
        assert is_irreducible(graph)

    def test_empty_graph_irreducible(self, empty_graph):
        assert is_irreducible(empty_graph)  # vacuously

    def test_single_violating_txn(self):
        graph = build_graph(
            {"A": "A", "T": "C"},
            [("A", "T")],
            [("T", "x", M.WRITE)],
        )
        assert is_irreducible(graph)


class TestWitnessMap:
    def test_deletable_txn_has_empty_pairs(self, fig1_graph):
        pairs = witness_map(fig1_graph)
        assert pairs["T2"] == frozenset()
        assert pairs["T3"] == frozenset()

    def test_violating_txn_names_pairs(self, fig1_graph):
        reduced = fig1_graph.reduced_by(["T3"])
        pairs = witness_map(reduced)
        assert pairs["T2"] == frozenset({("T1", "x")})

    def test_disjointness_on_fig1(self, fig1_graph):
        verify_witness_disjointness(fig1_graph)

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=16))
    @settings(max_examples=80, deadline=None)
    def test_disjointness_universal(self, steps):
        """The §4 argument: no two completed transactions share a witness
        pair — on arbitrary reachable conflict graphs."""
        graph = graph_from_stream(steps)
        verify_witness_disjointness(graph)

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=16))
    @settings(max_examples=80, deadline=None)
    def test_bound_holds_after_reduction(self, steps):
        """Greedy-reduce to irreducibility; completed count ≤ a·e."""
        graph = graph_from_stream(steps)
        graph.delete_set(greedy_safe_deletion_set(graph))
        assert is_irreducible(graph)
        actives = len(graph.active_transactions())
        entities = len(
            {
                entity
                for txn in graph
                for entity in graph.info(txn).accesses
            }
        )
        completed = len(graph.completed_transactions())
        assert completed <= irreducible_bound(max(actives, 1), max(entities, 1))

"""Unit and property tests for schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidStepError
from repro.model.schedule import Schedule, interleave, serial_schedule
from repro.model.steps import Begin, Finish, Read, Write, WriteItem
from repro.model.transactions import TransactionSpec

from tests.conftest import basic_step_streams


def _toy() -> Schedule:
    return Schedule(
        (
            Begin("T1"),
            Read("T1", "x"),
            Begin("T2"),
            Read("T2", "y"),
            Write("T2", frozenset({"x"})),
            Write("T1", frozenset()),
        )
    )


class TestScheduleQueries:
    def test_transactions(self):
        assert _toy().transactions() == frozenset({"T1", "T2"})

    def test_entities(self):
        assert _toy().entities() == frozenset({"x", "y"})

    def test_steps_of(self):
        assert len(_toy().steps_of("T1")) == 3

    def test_projection_preserves_order(self):
        proj = _toy().projection({"T2"})
        assert [type(s).__name__ for s in proj] == ["Begin", "Read", "Write"]

    def test_accepted_subschedule(self):
        accepted = _toy().accepted_subschedule({"T1"})
        assert accepted.transactions() == frozenset({"T2"})

    def test_completed_and_active(self):
        sched = Schedule((Begin("T1"), Read("T1", "x"), Begin("T2"),
                          Write("T2", frozenset())))
        assert sched.completed_transactions() == frozenset({"T2"})
        assert sched.active_transactions() == frozenset({"T1"})

    def test_counts(self):
        assert _toy().counts() == {"Begin": 2, "Read": 2, "Write": 2}

    def test_concatenation(self):
        combined = _toy() + [Begin("T3")]
        assert len(combined) == len(_toy()) + 1


class TestSerial:
    def test_serial_schedule_is_serial(self):
        specs = [
            TransactionSpec("T1", ("x",), frozenset({"y"})),
            TransactionSpec("T2", ("y",), frozenset()),
        ]
        assert serial_schedule(specs).is_serial()

    def test_interleaved_not_serial(self):
        assert not _toy().is_serial()

    def test_single_transaction_serial(self):
        sched = Schedule((Begin("T1"), Read("T1", "x"), Write("T1", frozenset())))
        assert sched.is_serial()

    def test_empty_schedule_serial(self):
        assert Schedule().is_serial()


class TestValidateBasicModel:
    def test_valid(self):
        _toy().validate_basic_model()

    def test_duplicate_begin(self):
        with pytest.raises(InvalidStepError):
            Schedule((Begin("T1"), Begin("T1"))).validate_basic_model()

    def test_step_before_begin(self):
        with pytest.raises(InvalidStepError):
            Schedule((Read("T1", "x"),)).validate_basic_model()

    def test_step_after_final_write(self):
        with pytest.raises(InvalidStepError):
            Schedule(
                (Begin("T1"), Write("T1", frozenset()), Read("T1", "x"))
            ).validate_basic_model()

    def test_multiwrite_steps_rejected(self):
        with pytest.raises(InvalidStepError):
            Schedule((Begin("T1"), WriteItem("T1", "x"))).validate_basic_model()
        with pytest.raises(InvalidStepError):
            Schedule((Begin("T1"), Finish("T1"))).validate_basic_model()


class TestInterleave:
    def _specs(self):
        return [
            TransactionSpec("T1", ("a",), frozenset({"b"})),
            TransactionSpec("T2", ("b",), frozenset({"a"})),
            TransactionSpec("T3", ("a", "b"), frozenset()),
        ]

    def test_deterministic(self):
        assert interleave(self._specs(), seed=5) == interleave(self._specs(), seed=5)

    def test_all_steps_present(self):
        sched = interleave(self._specs(), seed=1)
        assert len(sched) == sum(len(spec) for spec in self._specs())

    def test_per_transaction_order_preserved(self):
        sched = interleave(self._specs(), seed=3)
        for spec in self._specs():
            assert sched.steps_of(spec.txn) == spec.steps()

    def test_max_concurrent_one_is_serial(self):
        sched = interleave(self._specs(), seed=2, max_concurrent=1)
        assert sched.is_serial()

    def test_different_seeds_differ_somewhere(self):
        outcomes = {interleave(self._specs(), seed=s).steps for s in range(8)}
        assert len(outcomes) > 1


class TestStreamStrategyProperties:
    @given(basic_step_streams())
    @settings(max_examples=60, deadline=None)
    def test_generated_streams_respect_the_protocol(self, steps):
        Schedule(tuple(steps)).validate_basic_model()

    @given(basic_step_streams())
    @settings(max_examples=60, deadline=None)
    def test_projection_union_is_identity(self, steps):
        sched = Schedule(tuple(steps))
        txns = sorted(sched.transactions())
        merged = sched.projection(txns)
        assert merged == sched

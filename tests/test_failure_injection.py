"""Failure injection and hostile-input tests.

Abort storms, duplicate ids, out-of-protocol steps, empty structures,
deleted-twice transactions — the library must fail loudly with typed
errors, never corrupt its graphs.
"""

from __future__ import annotations

import pytest

from repro.core.conditions import can_delete
from repro.core.reduced_graph import ReducedGraph
from repro.core.set_conditions import can_delete_set
from repro.errors import (
    NotCompletedError,
    ReproError,
    SchedulerError,
    TransactionStateError,
    UnknownTransactionError,
)
from repro.model.status import AccessMode, TxnState
from repro.model.steps import Begin, Finish, Read, Write, WriteItem
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.scheduler.multiwrite import MultiwriteScheduler
from repro.workloads.generator import WorkloadConfig, basic_stream


class TestAbortStorm:
    def test_every_transaction_aborts_graph_empties(self):
        """Pairs of transactions kill each other; the graph must end empty
        and every abort must be accounted for."""
        scheduler = ConflictGraphScheduler()
        aborted = 0
        for i in range(0, 10, 2):
            a, b = f"T{i}", f"T{i+1}"
            results = scheduler.feed_many(
                [
                    Begin(a),
                    Read(a, "x"),
                    Begin(b),
                    Read(b, "x"),
                    Write(b, frozenset({"x"})),  # a -> b
                    Write(a, frozenset({"x"})),  # cycle: a aborts
                ]
            )
            aborted += sum(len(r.aborted) for r in results)
        assert aborted == 5
        # Survivors are the 5 committed writers.
        assert len(scheduler.graph.completed_transactions()) == 5
        assert len(scheduler.graph.active_transactions()) == 0

    def test_graph_invariants_after_storm(self):
        scheduler = ConflictGraphScheduler()
        config = WorkloadConfig(
            n_transactions=30,
            n_entities=3,
            max_accesses=3,
            multiprogramming=6,
            write_fraction=0.8,
            seed=13,
        )
        scheduler.feed_many(basic_stream(config))
        # Internal closure must still be consistent.
        scheduler.graph._closure.check_invariants()

    def test_cascading_abort_storm_multiwrite(self):
        scheduler = MultiwriteScheduler()
        # B writes; chain of readers piles on; then B aborts via a cycle.
        steps = [Begin("B"), WriteItem("B", "x")]
        for i in range(5):
            steps += [Begin(f"R{i}"), Read(f"R{i}", "x" if i == 0 else f"v{i-1}"),
                      WriteItem(f"R{i}", f"v{i}")]
        steps += [
            Begin("Z"),
            Read("Z", "q"),
            Read("B", "w"),
            WriteItem("Z", "w"),  # B -> Z
            WriteItem("B", "q"),  # Z -> B: cycle, abort B + dependents
        ]
        results = scheduler.feed_many(steps)
        final = results[-1]
        assert final.rejected
        assert "B" in final.aborted and "R0" in final.aborted
        scheduler.graph._closure.check_invariants()


class TestHostileDriving:
    def test_duplicate_begin(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed(Begin("T1"))
        with pytest.raises(TransactionStateError):
            scheduler.feed(Begin("T1"))

    def test_step_of_never_begun_txn(self):
        scheduler = ConflictGraphScheduler()
        with pytest.raises(SchedulerError):
            scheduler.feed(Read("ghost", "x"))

    def test_step_after_commit(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many([Begin("T1"), Write("T1", frozenset())])
        with pytest.raises(SchedulerError):
            scheduler.feed(Read("T1", "x"))

    def test_finish_twice_multiwrite(self):
        scheduler = MultiwriteScheduler()
        scheduler.feed_many([Begin("T1"), Finish("T1")])
        with pytest.raises(SchedulerError):
            scheduler.feed(Finish("T1"))

    def test_id_reuse_after_abort_is_ignored_not_corrupting(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", frozenset({"x"})),
                Write("T1", frozenset({"x"})),  # T1 aborts
            ]
        )
        result = scheduler.feed(Begin("T1"))  # reuse of a dead id
        assert result.decision.value == "ignored"
        assert "T1" not in scheduler.graph


class TestDeletionMisuse:
    def test_delete_unknown(self):
        with pytest.raises(UnknownTransactionError):
            ReducedGraph().delete("nope")

    def test_delete_active(self):
        graph = ReducedGraph()
        graph.add_transaction("T1")
        with pytest.raises(NotCompletedError):
            graph.delete("T1")

    def test_delete_twice(self):
        graph = ReducedGraph()
        graph.add_transaction("T1", TxnState.COMMITTED)
        graph.delete("T1")
        with pytest.raises(UnknownTransactionError):
            graph.delete("T1")

    def test_condition_on_deleted_candidate(self):
        graph = ReducedGraph()
        graph.add_transaction("T1", TxnState.COMMITTED)
        graph.delete("T1")
        with pytest.raises(UnknownTransactionError):
            can_delete(graph, "T1")

    def test_c2_with_unknown_member(self):
        graph = ReducedGraph()
        graph.add_transaction("T1", TxnState.COMMITTED)
        with pytest.raises(UnknownTransactionError):
            can_delete_set(graph, {"T1", "ghost"})

    def test_all_errors_are_repro_errors(self):
        for exc in (
            UnknownTransactionError("x"),
            NotCompletedError("x", TxnState.ACTIVE),
            TransactionStateError("boom"),
            SchedulerError("boom"),
        ):
            assert isinstance(exc, ReproError)


class TestEmptyStructures:
    def test_empty_graph_queries(self):
        graph = ReducedGraph()
        assert graph.nodes() == frozenset()
        assert graph.active_transactions() == frozenset()
        assert graph.arc_count() == 0

    def test_scheduler_with_no_input(self):
        scheduler = ConflictGraphScheduler()
        assert scheduler.accepted_subschedule().steps == ()
        assert scheduler.aborted == frozenset()

    def test_write_of_nothing(self):
        scheduler = ConflictGraphScheduler()
        results = scheduler.feed_many([Begin("T1"), Write("T1", frozenset())])
        assert results[-1].accepted
        assert scheduler.graph.info("T1").accesses == {}

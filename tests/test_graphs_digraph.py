"""Unit and property tests for the DiGraph kernel (incl. contraction)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArcNotFoundError, CycleError, GraphError, NodeNotFoundError
from repro.graphs.digraph import DiGraph


def _chain(n: int) -> DiGraph:
    graph = DiGraph()
    for i in range(n):
        graph.add_node(i)
    for i in range(n - 1):
        graph.add_arc(i, i + 1)
    return graph


class TestBasicOperations:
    def test_add_and_membership(self):
        graph = DiGraph()
        graph.add_node("a")
        assert "a" in graph
        assert "b" not in graph
        assert len(graph) == 1

    def test_add_node_idempotent(self):
        graph = DiGraph()
        graph.add_node("a")
        graph.add_node("a")
        assert len(graph) == 1

    def test_arc_requires_nodes(self):
        graph = DiGraph()
        graph.add_node("a")
        with pytest.raises(NodeNotFoundError):
            graph.add_arc("a", "b")
        with pytest.raises(NodeNotFoundError):
            graph.add_arc("b", "a")

    def test_self_loop_rejected(self):
        graph = DiGraph()
        graph.add_node("a")
        with pytest.raises(GraphError):
            graph.add_arc("a", "a")

    def test_remove_arc(self):
        graph = DiGraph([("a", "b")])
        graph.remove_arc("a", "b")
        assert not graph.has_arc("a", "b")
        with pytest.raises(ArcNotFoundError):
            graph.remove_arc("a", "b")

    def test_successors_predecessors(self):
        graph = DiGraph([("a", "b"), ("a", "c"), ("b", "c")])
        assert graph.successors("a") == frozenset({"b", "c"})
        assert graph.predecessors("c") == frozenset({"a", "b"})
        assert graph.out_degree("a") == 2
        assert graph.in_degree("c") == 2

    def test_remove_node_drops_incident_arcs(self):
        graph = DiGraph([("a", "b"), ("b", "c")])
        graph.remove_node("b")
        assert "b" not in graph
        assert graph.arc_count() == 0

    def test_remove_missing_node(self):
        with pytest.raises(NodeNotFoundError):
            DiGraph().remove_node("ghost")

    def test_arcs_iteration(self):
        graph = DiGraph([("a", "b"), ("b", "c")])
        assert sorted(graph.arcs()) == [("a", "b"), ("b", "c")]


class TestContraction:
    def test_bypass_arcs_created(self):
        graph = DiGraph([("a", "m"), ("m", "b"), ("m", "c")])
        graph.contract("m")
        assert graph.has_arc("a", "b")
        assert graph.has_arc("a", "c")
        assert "m" not in graph

    def test_contract_isolated_node(self):
        graph = DiGraph()
        graph.add_node("m")
        graph.contract("m")
        assert len(graph) == 0

    def test_contract_source_only(self):
        graph = DiGraph([("m", "a"), ("m", "b")])
        graph.contract("m")
        assert graph.arc_count() == 0

    def test_contract_preserves_existing_arcs(self):
        graph = DiGraph([("a", "m"), ("m", "b"), ("a", "b"), ("c", "d")])
        graph.contract("m")
        assert graph.has_arc("a", "b")
        assert graph.has_arc("c", "d")

    def test_contract_missing_node(self):
        with pytest.raises(NodeNotFoundError):
            DiGraph().contract("ghost")

    def test_contraction_preserves_reachability(self):
        # a -> m -> b -> m is impossible (acyclic), so test a diamond.
        graph = DiGraph([("s", "m"), ("m", "t"), ("s", "u"), ("u", "t")])
        graph.contract("m")
        nxg = nx.DiGraph(list(graph.arcs()))
        assert nx.has_path(nxg, "s", "t")


class TestSubgraphAndCopy:
    def test_copy_independent(self):
        graph = DiGraph([("a", "b")])
        clone = graph.copy()
        clone.add_node("c")
        clone.add_arc("b", "c")
        assert "c" not in graph
        assert graph.arc_count() == 1

    def test_subgraph_without(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        sub = graph.subgraph_without({"b"})
        assert sub.nodes() == frozenset({"a", "c"})
        assert sub.has_arc("a", "c")
        assert not any("b" in arc for arc in sub.arcs())

    def test_reversed(self):
        graph = DiGraph([("a", "b")])
        rev = graph.reversed()
        assert rev.has_arc("b", "a")
        assert not rev.has_arc("a", "b")

    def test_equality(self):
        assert DiGraph([("a", "b")]) == DiGraph([("a", "b")])
        assert DiGraph([("a", "b")]) != DiGraph([("b", "a")])

    def test_to_dot_mentions_every_arc(self):
        dot = DiGraph([("a", "b")]).to_dot()
        assert '"a" -> "b";' in dot


# Random DAG arcs: pairs (i, j) with i < j guarantee acyclicity.
_dag_arcs = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda p: p[0] < p[1]),
    max_size=20,
)


class TestContractionProperties:
    @given(_dag_arcs, st.integers(0, 8))
    @settings(max_examples=80, deadline=None)
    def test_contraction_matches_networkx_reachability(self, arcs, victim):
        graph = DiGraph()
        for i in range(9):
            graph.add_node(i)
        for tail, head in arcs:
            graph.add_arc(tail, head)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(9))
        nxg.add_edges_from(arcs)
        before = {
            (u, v)
            for u in nxg
            for v in nxg
            if u != v and u != victim and v != victim and nx.has_path(nxg, u, v)
        }
        graph.contract(victim)
        contracted = nx.DiGraph()
        contracted.add_nodes_from(graph.nodes())
        contracted.add_edges_from(graph.arcs())
        after = {
            (u, v)
            for u in contracted
            for v in contracted
            if u != v and nx.has_path(contracted, u, v)
        }
        assert before == after

"""Replication units: WAL tailing, checkpoint adoption, lag, promotion.

The *equivalence* properties (a follower's snapshot byte-identical to a
``recover()`` of the same log, across every scheduler and shard count,
and the serving-layer failover drills) live in
``tests/test_replication_equivalence.py``; this module pins the
mechanisms they are built on — incremental tailing without the writer
lock, adoption of checkpoints that truncate the tail out from under the
follower, single-torn-tail tolerance, honest lag accounting, the
live-primary promotion guard, and the ``PROMOTIONS.json`` audit marker.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.durability import DurableEngine, recover
from repro.errors import (
    DurabilityError,
    PromotionError,
    WalCorruptionError,
    WalLockedError,
)
from repro.faults import FaultPlan, FaultSpec, FaultyIO, InjectedIOError
from repro.io import engine_snapshot_to_json
from repro.replication import (
    PROMOTIONS_NAME,
    ReplicaLag,
    WalFollower,
    read_promotions,
)
from repro.workloads.generator import WorkloadConfig, basic_stream

CONFIG = WorkloadConfig(
    n_transactions=40, n_entities=10, multiprogramming=5,
    write_fraction=0.4, max_accesses=3, seed=11,
)


def _stream():
    return list(basic_stream(CONFIG))


def _durable(tmp_path, **kwargs):
    kwargs.setdefault("scheduler", "conflict-graph")
    kwargs.setdefault("policy", "eager-c1")
    kwargs.setdefault("checkpoint_interval", 16)
    return DurableEngine(wal_dir=tmp_path / "wal", **kwargs)


def _fingerprint(engine) -> str:
    return engine_snapshot_to_json(engine.snapshot())


def _last_segment(wal_dir):
    segments = sorted(
        (wal_dir / "segments").iterdir(), key=lambda p: p.stat().st_mtime
    )
    return segments[-1]


def _recovery_fingerprint(wal_dir, tmp_path) -> str:
    """Oracle: what ``recover()`` of *wal_dir* yields, on a copy so the
    recovery's own repairs/locking never perturb the directory under
    test."""
    copy = tmp_path / "oracle-copy"
    if copy.exists():
        shutil.rmtree(copy)
    shutil.copytree(wal_dir, copy)
    (copy / "LOCK").unlink(missing_ok=True)
    recovered = recover(copy)
    try:
        return _fingerprint(recovered.engine)
    finally:
        recovered.close()


# ---------------------------------------------------------------------------
# Tailing
# ---------------------------------------------------------------------------


class TestTailing:
    def test_follower_tracks_live_primary(self, tmp_path):
        stream = _stream()
        durable = _durable(tmp_path)
        follower = WalFollower(tmp_path / "wal")
        for start in range(0, len(stream), 7):
            durable.feed_many(stream[start : start + 7])
            follower.poll()
        durable.close()
        follower.poll()
        assert follower.wal_seq == durable.seq
        assert follower.lag().lag_seq == 0
        primary_print = _fingerprint(durable._inner)
        assert _fingerprint(follower.engine) == primary_print
        follower.close()

    def test_idle_polls_apply_nothing(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:10])
        follower = WalFollower(tmp_path / "wal")
        first = follower.poll()
        assert follower.poll() == 0
        assert follower.wal_seq == durable.seq
        assert first + follower.wal_seq >= durable.seq  # adopted or applied
        durable.close()
        follower.close()

    def test_checkpoint_adoption_survives_truncation(self, tmp_path):
        """The primary checkpoints + truncates faster than the follower
        reads: the vanished prefix is recovered via the chain, never
        stalled on."""
        stream = _stream()
        durable = _durable(tmp_path, checkpoint_interval=8)
        follower = WalFollower(tmp_path / "wal")
        durable.feed_many(stream)  # many checkpoints before any poll
        durable.close()
        follower.poll()
        assert follower.checkpoints_adopted >= 1
        assert follower.wal_seq == durable.seq
        assert _fingerprint(follower.engine) == _fingerprint(durable._inner)
        follower.close()

    def test_follower_takes_no_lock(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:10])
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        # The primary is still alive and still writable.
        durable.feed_many(_stream()[10:20])
        durable.close()
        # And a fresh writer can open the directory while the follower
        # exists: observers leave no lock behind.
        reopened = recover(tmp_path / "wal")
        follower.poll()
        assert follower.wal_seq == reopened.seq
        reopened.close()
        follower.close()

    def test_sharded_stream_applies_in_seq_order(self, tmp_path):
        stream = _stream()
        durable = _durable(tmp_path, shards=4)
        follower = WalFollower(tmp_path / "wal")
        for start in range(0, len(stream), 5):
            durable.feed_many(stream[start : start + 5])
            follower.poll()
        durable.close()
        follower.poll()
        assert follower.wal_seq == durable.seq
        assert _fingerprint(follower.engine) == _fingerprint(durable._inner)
        follower.close()

    def test_closed_follower_refuses_to_poll(self, tmp_path):
        durable = _durable(tmp_path)
        durable.close()
        follower = WalFollower(tmp_path / "wal")
        follower.close()
        with pytest.raises(DurabilityError, match="closed"):
            follower.poll()


# ---------------------------------------------------------------------------
# Torn tails
# ---------------------------------------------------------------------------


class TestTornTails:
    def test_trailing_fragment_is_an_append_in_flight(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        applied = follower.wal_seq
        segment = _last_segment(tmp_path / "wal")
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"format":1,"seq":9999,"step":{"kind":"re')
        assert follower.poll() == 0  # no newline: not yet a record
        assert follower.wal_seq == applied
        durable.close()
        follower.close()

    def test_single_torn_complete_line_is_suspect_not_fatal(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        durable.simulate_crash()
        segment = _last_segment(tmp_path / "wal")
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"format":1,"seq":9999,"step":{"kind":"re\n')
        follower = WalFollower(tmp_path / "wal")
        follower.poll()  # tolerated: one crash tears at most one record
        assert follower.wal_seq == 20
        follower.close()

    def test_two_torn_tails_are_corruption(self, tmp_path):
        stream = _stream()
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", shards=2, checkpoint_interval=0,
        )
        durable.feed_many(stream[:30])
        durable.simulate_crash()
        segments = sorted((tmp_path / "wal" / "segments").iterdir())
        assert len(segments) >= 2
        for segment in segments[:2]:
            with open(segment, "a", encoding="utf-8") as handle:
                handle.write('{"format":1,"seq":77,"st\n')
        follower = WalFollower(tmp_path / "wal")
        with pytest.raises(WalCorruptionError, match="torn segment tails"):
            follower.poll()

    def test_mid_segment_corruption_aborts(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        durable.simulate_crash()
        segment = _last_segment(tmp_path / "wal")
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('not json at all\n{"format":1,"seq":9999,"ste')
        follower = WalFollower(tmp_path / "wal")
        with pytest.raises(WalCorruptionError, match="not the segment tail"):
            follower.poll()

    def test_repaired_shrunken_segment_is_rescanned(self, tmp_path):
        """A recovery repairs a torn tail in place (the file shrinks);
        the follower's stale byte offset must reset, not misparse."""
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        durable.simulate_crash()
        segment = _last_segment(tmp_path / "wal")
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"format":1,"seq":9999,"step":{"kind":"re')
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        recovered = recover(tmp_path / "wal")  # repairs the torn bytes
        recovered.feed_many(_stream()[20:30])
        recovered.close()
        follower.poll()
        assert follower.wal_seq == recovered.seq
        assert _fingerprint(follower.engine) == _fingerprint(
            recovered._inner
        )
        follower.close()


# ---------------------------------------------------------------------------
# Lag accounting
# ---------------------------------------------------------------------------


class TestLag:
    def test_probe_sees_unapplied_records(self, tmp_path):
        durable = _durable(tmp_path)
        follower = WalFollower(tmp_path / "wal")
        durable.feed_many(_stream()[:20])
        lag = follower.lag(probe=True)
        assert isinstance(lag, ReplicaLag)
        assert lag.visible_seq == durable.seq
        assert lag.lag_seq == durable.seq - lag.applied_seq > 0
        follower.poll()
        caught_up = follower.lag()
        assert caught_up.lag_seq == 0
        assert caught_up.lag_seconds == 0.0
        durable.close()
        follower.close()

    def test_metrics_surface(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:10])
        durable.close()
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        metrics = follower.metrics()
        assert metrics["polls"] == 1
        assert metrics["applied_seq"] == follower.wal_seq
        assert set(metrics) >= {
            "records_applied", "checkpoints_adopted", "lag_seq",
            "lag_seconds", "visible_seq",
        }
        follower.close()


# ---------------------------------------------------------------------------
# Promotion
# ---------------------------------------------------------------------------


class TestPromotion:
    def test_promote_refuses_live_primary(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:10])
        follower = WalFollower(tmp_path / "wal")
        with pytest.raises(WalLockedError):
            follower.promote()
        # The refusal left the follower alive and the primary writable.
        durable.feed_many(_stream()[10:20])
        follower.poll()
        assert follower.wal_seq == durable.seq
        durable.close()
        follower.close()

    def test_promote_after_crash_matches_recovery_oracle(self, tmp_path):
        stream = _stream()
        durable = _durable(tmp_path)
        durable.feed_many(stream)
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        durable.simulate_crash()
        oracle = _recovery_fingerprint(tmp_path / "wal", tmp_path)
        promoted = follower.promote()
        try:
            assert _fingerprint(promoted._inner) == oracle
            assert promoted.seq == follower.wal_seq
            assert follower.promoted
        finally:
            promoted.close()

    def test_promote_repairs_torn_tail(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        durable.simulate_crash()
        segment = _last_segment(tmp_path / "wal")
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"format":1,"seq":9999,"step":{"kind":"re')
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        promoted = follower.promote()
        try:
            assert promoted.seq == 20
            # The torn bytes are gone for good: a later recovery of the
            # same directory sees a clean log.
            promoted.feed_many(_stream()[20:25])
        finally:
            promoted.close()
        again = recover(tmp_path / "wal")
        assert again.recovery_info.torn_records_dropped == 0
        again.close()

    def test_promoted_engine_is_writable_and_durable(self, tmp_path):
        stream = _stream()
        durable = _durable(tmp_path)
        durable.feed_many(stream[:20])
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        durable.simulate_crash()
        promoted = follower.promote()
        promoted.feed_many(stream[20:])
        final = _fingerprint(promoted._inner)
        final_seq = promoted.seq
        promoted.close()
        check = recover(tmp_path / "wal")
        assert check.seq == final_seq
        assert _fingerprint(check.engine) == final
        check.close()

    def test_cold_promote_uses_chain_restore(self, tmp_path):
        """A follower the primary checkpointed past (its applied prefix
        was truncated before it ever polled) promotes from the chain."""
        stream = _stream()
        durable = _durable(tmp_path, checkpoint_interval=8)
        follower = WalFollower(tmp_path / "wal")  # adopts the empty chain
        durable.feed_many(stream)
        durable.simulate_crash()
        oracle = _recovery_fingerprint(tmp_path / "wal", tmp_path)
        promoted = follower.promote()  # never polled: behind the chain
        try:
            assert _fingerprint(promoted._inner) == oracle
        finally:
            promoted.close()

    def test_promotions_marker_is_audited(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        durable.simulate_crash()
        assert read_promotions(tmp_path / "wal") == []
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        promoted = follower.promote()
        promoted.close()
        entries = read_promotions(tmp_path / "wal")
        assert len(entries) == 1
        assert entries[0]["seq"] == 20
        assert entries[0]["pid"] > 0
        payload = json.loads(
            (tmp_path / "wal" / PROMOTIONS_NAME).read_text()
        )
        assert payload["kind"] == "wal-promotions"
        # A second failover appends, never overwrites, the audit trail.
        second = WalFollower(tmp_path / "wal")
        second.promote().close()
        assert len(read_promotions(tmp_path / "wal")) == 2

    def test_promotion_consumes_no_sequence_number(self, tmp_path):
        """The watermark arithmetic clients resume on must survive
        failover: promotion appends nothing to the WAL."""
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        sealed = durable.seq
        durable.simulate_crash()
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        promoted = follower.promote()
        assert promoted.seq == sealed
        promoted.close()

    def test_spent_follower_refuses_everything(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:10])
        durable.simulate_crash()
        follower = WalFollower(tmp_path / "wal")
        promoted = follower.promote()
        promoted.close()
        with pytest.raises(DurabilityError, match="promoted"):
            follower.poll()
        with pytest.raises(DurabilityError, match="promoted"):
            follower.promote()

    def test_divergent_replica_refuses_to_promote(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        follower = WalFollower(tmp_path / "wal")
        follower.poll()
        durable.simulate_crash()
        # Corrupt the warm engine behind the follower's back.
        follower.engine.snapshot  # still alive
        follower._applied_seq = follower._applied_seq  # no-op
        follower._engine = recover_divergent(tmp_path, _stream())
        with pytest.raises(PromotionError, match="divergent"):
            follower.promote()
        # The failed attempt released the writer lock.
        check = recover(tmp_path / "wal")
        check.close()


def recover_divergent(tmp_path, stream):
    """An engine whose state cannot match the log (different prefix)."""
    from repro.engine import build_engine

    engine = build_engine(scheduler="conflict-graph", policy="eager-c1")
    for step in stream[:7]:
        try:
            engine.feed(step)
        except Exception:
            pass
    return engine


# ---------------------------------------------------------------------------
# Fault sites
# ---------------------------------------------------------------------------


class TestFaultSites:
    def test_follower_read_fault_is_transient(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        durable.close()
        plan = FaultPlan([FaultSpec(site="follower.read", at=1,
                                    kind="io_error")])
        follower = WalFollower(tmp_path / "wal", io=FaultyIO(plan))
        with pytest.raises(InjectedIOError):
            follower.poll()
        follower.poll()  # the next poll reads the same bytes again
        assert follower.wal_seq == 20
        follower.close()

    def test_promote_seal_fault_releases_nothing(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:20])
        durable.simulate_crash()
        plan = FaultPlan([FaultSpec(site="promote.seal", at=1,
                                    kind="io_error")])
        follower = WalFollower(tmp_path / "wal", io=FaultyIO(plan))
        with pytest.raises(InjectedIOError):
            follower.promote()
        # The faulted attempt fired before the lock was taken; a retry
        # wins cleanly and the follower was not spent by the failure.
        promoted = follower.promote()
        assert promoted.seq == 20
        promoted.close()

    def test_generate_excludes_replication_sites_by_default(self):
        plan = FaultPlan.generate(seed=7, n_faults=64)
        for spec in plan.faults:
            assert not spec.site.startswith(
                ("follower.", "promote.", "server.")
            )


class TestAdoptionRace:
    """The publish-then-strip race: a follower's chain read can overlap
    the primary publishing checkpoint N and stripping N-1's core.  While
    the chain head keeps advancing the failure is transient — the
    follower must defer (serving stale reads) rather than die; a static
    coreless head is genuine damage and must still raise."""

    def _behind_follower(self, tmp_path):
        durable = _durable(tmp_path, checkpoint_interval=8)
        stream = _stream()
        durable.feed_many(stream[:4])
        follower = WalFollower(tmp_path / "wal")
        follower.poll()  # applied=4
        # Later checkpoints truncate the segments the follower still
        # needed: from here, only adoption can move it forward.
        durable.feed_many(stream[4:])
        durable.close()
        assert follower.wal_seq == 4
        return follower

    def test_racing_chain_defers_instead_of_dying(self, tmp_path,
                                                  monkeypatch):
        from repro import replication as replication_module
        from repro.errors import RecoveryError

        follower = self._behind_follower(tmp_path)

        def _always_stripped(*args, **kwargs):
            raise RecoveryError("latest checkpoint has no core")

        heads = iter(range(100, 200))
        monkeypatch.setattr(
            replication_module, "_restore_from_chain", _always_stripped
        )
        monkeypatch.setattr(
            follower, "_latest_checkpoint_seq", lambda: next(heads)
        )
        # Head advances between every attempt: poll survives, adopts
        # nothing, and stays on its current (stale but serving) state.
        assert follower.poll() == 0
        assert follower.checkpoints_adopted == 0
        assert not follower.closed

        # Once the burst subsides the next poll lands the adoption.
        monkeypatch.undo()
        follower.poll()
        assert follower.checkpoints_adopted == 1
        assert follower.lag().lag_seq == 0
        follower.close()

    def test_static_coreless_head_still_raises(self, tmp_path,
                                               monkeypatch):
        from repro import replication as replication_module
        from repro.errors import RecoveryError

        follower = self._behind_follower(tmp_path)

        def _always_stripped(*args, **kwargs):
            raise RecoveryError("latest checkpoint has no core")

        monkeypatch.setattr(
            replication_module, "_restore_from_chain", _always_stripped
        )
        # The real chain head is static (the primary is closed), so the
        # second attempt sees the same head and raises for the caller.
        with pytest.raises(RecoveryError):
            follower.poll()
        follower.close()

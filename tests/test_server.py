"""Serving front-end behavior: admission control, reads under write
saturation, durable tenant lifecycle, protocol robustness, clients.

Complements ``test_serving_equivalence.py`` (which proves the served
results equal standalone engines); this module exercises the *service*
semantics the equivalence suite takes for granted: a full queue rejects
with a structured ``saturated`` error instead of hanging, audit reads
answer while a write batch is in flight, a ``wal_dir`` tenant survives a
close/open cycle, malformed wire traffic gets structured errors rather
than dropped connections, and the blocking client drives a server running
in another thread.

No pytest-asyncio in the image: tests run their own loops via
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.client import AsyncServingClient, ServingClient
from repro.engine import Engine, build_engine
from repro.errors import (
    RequestRejectedError,
    TenantSaturatedError,
    UnknownTenantError,
)
from repro.io import wire_message_from_line, wire_message_to_line
from repro.model.steps import Begin, Finish, Read, Write
from repro.server import ReproServer
from repro.workloads.banking import BankingConfig, banking_stream


def _steps(n: int, prefix: str = "T"):
    out = []
    for i in range(n // 3 + 1):
        txn = f"{prefix}{i}"
        out.extend([Begin(txn), Read(txn, f"e{i % 5}"),
                    Write(txn, {f"e{i % 5}"})])
    return out[:n]


class TestAdmissionControl:
    def test_saturated_write_rejects_with_retry_after(self):
        async def _run() -> None:
            server = ReproServer(max_queue_depth=4)
            server.create_tenant(
                "t", scheduler="conflict-graph", policy="never"
            )
            # Fill the backlog from a sibling task; asyncio runs ready
            # callbacks FIFO, so after one sleep(0) the first submit has
            # enqueued (pending=4) but the worker has not drained yet.
            filler = asyncio.get_running_loop().create_task(
                server.submit("t", _steps(4))
            )
            await asyncio.sleep(0)
            with pytest.raises(TenantSaturatedError) as info:
                await server.submit("t", _steps(3, prefix="X"))
            assert info.value.code == "saturated"
            assert info.value.retry_after > 0
            await filler  # backlog drains; admission opens again
            await server.submit("t", _steps(3, prefix="Y"))
            await server.close()

        asyncio.run(_run())

    def test_oversized_batch_is_rejected_outright(self):
        async def _run() -> None:
            server = ReproServer(max_queue_depth=8)
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", scheduler="conflict-graph", policy="never"
                    )
                    with pytest.raises(RequestRejectedError) as info:
                        await c.feed_batch("t", _steps(9))
                    # Not "saturated": waiting would never admit it.
                    assert info.value.code == "too_large"
            finally:
                await server.close()

        asyncio.run(_run())

    def test_rejections_are_counted_in_metrics(self):
        async def _run() -> None:
            server = ReproServer(max_queue_depth=2)
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", scheduler="conflict-graph", policy="never"
                    )
                    with pytest.raises(RequestRejectedError):
                        await c.feed_batch("t", _steps(5))
                    metrics = await c.metrics()
                    assert (
                        metrics["tenants"]["t"]["admissions_rejected"] == 1
                    )
            finally:
                await server.close()

        asyncio.run(_run())

    def test_client_feed_all_honors_backpressure(self):
        async def _run() -> None:
            server = ReproServer(max_queue_depth=16, yield_every=4)
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", scheduler="conflict-graph", policy="eager-c1"
                    )
                    steps = list(banking_stream(BankingConfig(
                        n_accounts=16, n_transfers=80, seed=1
                    )))
                    totals = await c.feed_all("t", steps, chunk=8)
                    assert totals["count"] == len(steps)
            finally:
                await server.close()

        asyncio.run(_run())


class TestReadsUnderSaturation:
    def test_audit_answers_while_batch_in_flight(self):
        """A second connection's audit read completes before a large
        write batch does — the read path does not sit in the queue."""

        async def _run() -> None:
            server = ReproServer(max_queue_depth=100_000, yield_every=8)
            host, port = await server.start()
            try:
                writer = await AsyncServingClient.connect(host, port)
                reader = await AsyncServingClient.connect(host, port)
                await writer.create_tenant(
                    "t", scheduler="conflict-graph", policy="eager-c1"
                )
                await writer.feed_batch("t", [Begin("SEED"),
                                              Read("SEED", "e0"),
                                              Write("SEED", {"e0"})])
                steps = list(banking_stream(BankingConfig(
                    n_accounts=64, n_transfers=1500, seed=2
                )))
                done_at = {}

                async def _write() -> None:
                    await writer.feed_batch("t", steps)
                    done_at["write"] = time.perf_counter()

                async def _read() -> None:
                    await asyncio.sleep(0.01)  # land mid-batch
                    record = await reader.audit("t", "SEED")
                    done_at["read"] = time.perf_counter()
                    assert record["status"] in ("live", "deleted")
                    assert record["accepted_at"] == 1

                await asyncio.gather(_write(), _read())
                assert done_at["read"] < done_at["write"], (
                    "audit read should finish before the saturating batch"
                )
                await writer.close()
                await reader.close()
            finally:
                await server.close()

        asyncio.run(_run())


class TestDurableTenants:
    def test_close_then_open_recovers_history(self, tmp_path):
        wal = str(tmp_path / "acme-wal")

        async def _run() -> None:
            server = ReproServer()
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    created = await c.create_tenant(
                        "acme", wal_dir=wal,
                        scheduler="conflict-graph", policy="eager-c1",
                    )
                    assert created["durable"] is True
                    await c.feed_batch("acme", [
                        Begin("T1"), Read("T1", "x"), Write("T1", {"x"}),
                        Begin("T2"), Read("T2", "y"),
                    ])
                    deleted = await c.query("acme", "deleted")
                    await c.close_tenant("acme")
                    with pytest.raises(UnknownTenantError):
                        await c.audit("acme", "T1")
                    opened = await c.open_tenant("acme", wal)
                    assert opened["tenant"] == "acme"
                    stats = await c.query("acme", "stats")
                    assert stats["steps_fed"] == 5
                    assert await c.query("acme", "deleted") == deleted
                    assert await c.query("acme", "live") == ["T2"]
                    # Served history extends across the reopen seam.
                    await c.feed_batch("acme", [Read("T2", "y"),
                                                Write("T2", {"y"})])
                    assert (await c.query("acme", "stats"))["steps_fed"] == 7
            finally:
                await server.close()

        asyncio.run(_run())

    def test_create_on_existing_wal_dir_recovers(self, tmp_path):
        """`create` with a wal_dir that already has history recovers it
        (the open-from-wal path), instead of failing or truncating."""
        wal = str(tmp_path / "w")
        durable = build_engine(
            scheduler="conflict-graph", policy="never", wal_dir=wal
        )
        durable.feed_batch([Begin("A"), Read("A", "x")])
        durable.close(checkpoint=True)

        async def _run() -> None:
            server = ReproServer()
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", wal_dir=wal,
                        scheduler="conflict-graph", policy="never",
                    )
                    assert (await c.query("t", "stats"))["steps_fed"] == 2
                    assert await c.query("t", "live") == ["A"]
            finally:
                await server.close()

        asyncio.run(_run())


class TestProtocol:
    async def _raw_roundtrip(self, host, port, lines):
        reader, writer = await asyncio.open_connection(host, port)
        responses = []
        for line in lines:
            writer.write(line + b"\n")
            await writer.drain()
            responses.append(
                wire_message_from_line((await reader.readline()).decode())
            )
        writer.close()
        await writer.wait_closed()
        return responses

    def test_malformed_lines_get_structured_errors(self):
        async def _run() -> None:
            server = ReproServer()
            host, port = await server.start()
            try:
                responses = await self._raw_roundtrip(host, port, [
                    b"not json at all",
                    b'["an", "array"]',
                    b'{"no_op": true}',
                    b'{"op": "frobnicate"}',
                    b'{"op": "feed", "tenant": "missing"}',
                    b'{"op": "audit", "tenant": "nope", "txn": "T1"}',
                    wire_message_to_line({"op": "ping"}).encode(),
                ])
                codes = [
                    None if r["ok"] else r["error"]["code"]
                    for r in responses
                ]
                assert codes == [
                    "bad_request", "bad_request", "bad_request",
                    "bad_request", "bad_request", "unknown_tenant", None,
                ]
                # The connection survived all six errors.
                assert responses[-1]["server"] == "repro"
            finally:
                await server.close()

        asyncio.run(_run())

    def test_engine_errors_surface_without_killing_the_tenant(self):
        """A step the scheduler refuses at protocol level (unknown txn in
        the predeclared model) comes back as an error response; the
        tenant keeps serving afterwards."""

        async def _run() -> None:
            server = ReproServer()
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", scheduler="predeclared", policy="eager-c4"
                    )
                    with pytest.raises(RequestRejectedError):
                        await c.feed("t", Read("GHOST", "x"))
                    from repro.model.status import AccessMode
                    from repro.model.steps import BeginDeclared

                    result = await c.feed(
                        "t", BeginDeclared("REAL", {"x": AccessMode.READ})
                    )
                    assert result.accepted
            finally:
                await server.close()

        asyncio.run(_run())

    def test_request_ids_echo_on_success_and_error(self):
        async def _run() -> None:
            server = ReproServer()
            host, port = await server.start()
            try:
                responses = await self._raw_roundtrip(host, port, [
                    wire_message_to_line({"op": "ping", "id": 7}).encode(),
                    wire_message_to_line(
                        {"op": "audit", "tenant": "x", "txn": "T",
                         "id": 8}
                    ).encode(),
                ])
                assert responses[0]["id"] == 7
                assert responses[1]["id"] == 8 and not responses[1]["ok"]
            finally:
                await server.close()

        asyncio.run(_run())


class TestSyncClient:
    def test_blocking_client_against_threaded_server(self):
        """The blocking facade drives a server owned by another thread's
        event loop — the CLI / benchmark deployment shape."""
        started = threading.Event()
        stop = threading.Event()
        bound = {}

        def _serve() -> None:
            async def _main() -> None:
                server = ReproServer()
                bound["hostport"] = await server.start()
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.01)
                await server.close()

            asyncio.run(_main())

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        assert started.wait(5.0)
        host, port = bound["hostport"]
        try:
            with ServingClient(host, port) as client:
                client.create_tenant(
                    "t", scheduler="conflict-graph", policy="eager-c1"
                )
                steps = list(banking_stream(BankingConfig(
                    n_accounts=16, n_transfers=40, seed=3
                )))
                totals = client.feed_all("t", steps, chunk=64)
                assert totals["count"] == len(steps)
                deleted = client.query("t", "deleted")
                if deleted:
                    record = client.audit("t", deleted[0])
                    assert record["status"] == "deleted"
                metrics = client.metrics()
                assert metrics["tenants"]["t"]["steps_served"] == len(steps)
        finally:
            stop.set()
            thread.join(5.0)


class TestAuditAccessor:
    """The Engine.audit satellite, at the library level."""

    def test_statuses_cover_live_deleted_aborted_unknown(self):
        engine = Engine(scheduler="conflict-graph", policy="never")
        engine.feed(Begin("L"))
        engine.feed(Read("L", "x"))
        engine.feed(Begin("A"))
        engine.feed(Read("A", "x"))
        engine.feed(Write("A", {"x"}))   # A completes
        engine.feed(Write("L", {"x"}))   # L's write after A's -> L aborts
        live = engine.audit("A")
        assert live.status == "live" and live.accepted_at == 3
        aborted = engine.audit("L")
        assert aborted.status == "aborted" and aborted.accepted_at == 1
        unknown = engine.audit("NEVER_SEEN")
        assert unknown.status == "unknown"
        assert unknown.accepted_at is None

    def test_deletion_tick_matches_sweep_position(self):
        engine = Engine(scheduler="conflict-graph", policy="eager-c1",
                        sweep_interval=100)
        for step in [Begin("T"), Read("T", "x"), Write("T", {"x"}),
                     Begin("U"), Read("U", "y")]:
            engine.feed(step)
        assert engine.audit("T").status == "live"
        engine.sweep()
        record = engine.audit("T")
        assert record.status == "deleted"
        assert record.deleted_at == 5  # swept after the fifth step
        assert record.accepted_at == 1

    def test_sharded_audit_agrees_with_monolith(self):
        mono = Engine(scheduler="conflict-graph", policy="eager-c1")
        sharded = build_engine(
            scheduler="conflict-graph", policy="eager-c1", shards=2
        )
        steps = [Begin("T1"), Read("T1", "x"), Write("T1", {"x"}),
                 Begin("T2"), Read("T2", "y"), Write("T2", {"y"})]
        for step in steps:
            mono.feed(step)
            sharded.feed(step)
        for txn in ("T1", "T2", "NOPE"):
            assert sharded.audit(txn).as_dict() == mono.audit(txn).as_dict()

    def test_as_dict_is_json_ready(self):
        import json

        engine = Engine(scheduler="conflict-graph", policy="never")
        engine.feed(Begin("T"))
        payload = engine.audit("T").as_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestBuildEngineStrictKwargs:
    """The build_engine validation satellite."""

    def test_unknown_kwarg_names_the_key_and_suggests(self):
        with pytest.raises(ValueError, match="waldir"):
            build_engine(scheduler="conflict-graph", waldir="/tmp/x")
        with pytest.raises(ValueError, match="did you mean 'wal_dir'"):
            build_engine(scheduler="conflict-graph", waldir="/tmp/x")

    def test_durability_knobs_require_wal_dir(self):
        with pytest.raises(ValueError, match="wal_dir"):
            build_engine(scheduler="conflict-graph", checkpoint_interval=8)
        with pytest.raises(ValueError, match="wal_dir"):
            build_engine(scheduler="conflict-graph", sync="always")

    def test_valid_kwargs_still_build(self, tmp_path):
        assert isinstance(
            build_engine(scheduler="conflict-graph", policy="never"), Engine
        )
        durable = build_engine(
            scheduler="conflict-graph", policy="never",
            wal_dir=str(tmp_path / "w"), checkpoint_interval=8,
        )
        assert durable.checkpoint_interval == 8
        durable.close()

"""Randomized sufficiency checks for C3 and C4.

The necessity directions of Lemma 4 and Theorem 7 are covered by the
reduction tests (Theorem 6 ↔ DPLL) and the constructed witnesses.  This
suite attacks the *sufficiency* directions: whenever C3/C4 approves a
deletion, original and reduced schedulers must behave identically on
random adversarial continuations (steps of surviving actives plus fresh
transactions).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiwrite_conditions import can_delete_multiwrite
from repro.core.predeclared_conditions import can_delete_predeclared
from repro.core.reduced_graph import ReducedGraph
from repro.model.status import AccessMode, TxnState
from repro.model.steps import Begin, BeginDeclared, Finish, Read, Step, WriteItem
from repro.scheduler.events import Decision
from repro.scheduler.multiwrite import MultiwriteScheduler
from repro.scheduler.predeclared import PredeclaredScheduler

from tests.conftest import multiwrite_step_streams, predeclared_step_streams


def _entities_of(graph: ReducedGraph) -> list:
    entities = set()
    for txn in graph:
        info = graph.info(txn)
        entities.update(info.accesses)
        if info.future:
            entities.update(info.future)
    return sorted(entities) or ["x"]


def _random_multiwrite_continuation(
    graph: ReducedGraph, seed: int, length: int = 10
) -> list:
    """Steps of surviving actives + up to two fresh transactions."""
    rng = random.Random(seed)
    entities = _entities_of(graph) + ["_fresh"]
    actives = sorted(graph.active_transactions())
    live = list(actives)
    fresh_budget = 2
    steps: list = []
    for _ in range(length):
        choices = ["access"] if live else []
        if fresh_budget:
            choices.append("begin")
        if live:
            choices.append("finish")
        if not choices:
            break
        action = rng.choice(choices)
        if action == "begin":
            name = f"_N{fresh_budget}"
            fresh_budget -= 1
            live.append(name)
            steps.append(Begin(name))
        elif action == "finish":
            txn = rng.choice(live)
            live.remove(txn)
            steps.append(Finish(txn))
        else:
            txn = rng.choice(live)
            entity = rng.choice(entities)
            if rng.random() < 0.5:
                steps.append(Read(txn, entity))
            else:
                steps.append(WriteItem(txn, entity))
    return steps


def _lockstep_multiwrite(graph: ReducedGraph, deleted, continuation) -> bool:
    """True iff original and reduced multiwrite schedulers agree on every
    decision (and abort the same transactions) along the continuation."""
    original = MultiwriteScheduler(graph.copy())
    reduced = MultiwriteScheduler(graph.reduced_by(deleted))
    for step in continuation:
        result_o = original.feed(step)
        result_r = reduced.feed(step)
        if result_o.decision is not result_r.decision:
            return False
        if set(result_o.aborted) != set(result_r.aborted):
            return False
    return True


class TestC3Sufficiency:
    @given(
        multiwrite_step_streams(max_txns=4, max_entities=3, max_steps=14),
        st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_c3_approved_deletions_never_diverge(self, steps, cont_seed):
        scheduler = MultiwriteScheduler()
        scheduler.feed_many(steps)
        graph = scheduler.graph
        committed = sorted(graph.committed_transactions())
        if len(graph.active_transactions()) > 8:
            return
        for txn in committed:
            if not can_delete_multiwrite(graph, txn, max_actives=10):
                continue
            continuation = _random_multiwrite_continuation(graph, cont_seed)
            assert _lockstep_multiwrite(graph, [txn], continuation), (
                f"C3 approved {txn} but schedulers diverged; "
                f"prefix={steps}, continuation={continuation}"
            )

    @given(
        multiwrite_step_streams(max_txns=4, max_entities=3, max_steps=14),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_repeated_c3_deletions_never_diverge(self, steps, cont_seed):
        """Sequential C3-approved deletions (the EagerC3 policy's moves)
        stay lockstep-equivalent as a set."""
        scheduler = MultiwriteScheduler()
        scheduler.feed_many(steps)
        graph = scheduler.graph
        if len(graph.active_transactions()) > 8:
            return
        trial = graph.copy()
        chosen: list = []
        for txn in sorted(graph.committed_transactions()):
            if txn in trial and can_delete_multiwrite(trial, txn, max_actives=10):
                trial.delete(txn)
                chosen.append(txn)
        if not chosen:
            return
        continuation = _random_multiwrite_continuation(graph, cont_seed)
        assert _lockstep_multiwrite(graph, chosen, continuation)


def _random_predeclared_continuation(
    graph: ReducedGraph, seed: int, length: int = 10
) -> list:
    """Finish existing actives' declared work (in random interleaving) and
    inject up to two fresh declared transactions."""
    rng = random.Random(seed)
    entities = _entities_of(graph) + ["_fresh"]
    pending: dict = {}
    for txn in sorted(graph.active_transactions()):
        future = graph.info(txn).future or {}
        ops = [(mode, entity) for entity, mode in sorted(future.items())]
        rng.shuffle(ops)
        pending[txn] = ops
    fresh_budget = 2
    steps: list = []
    for _ in range(length):
        runnable = [t for t, ops in pending.items() if ops is not None]
        choices = []
        if fresh_budget:
            choices.append("begin")
        if runnable:
            choices.append("step")
        if not choices:
            break
        if rng.choice(choices) == "begin":
            name = f"_N{fresh_budget}"
            fresh_budget -= 1
            count = rng.randint(1, 2)
            chosen = rng.sample(entities, min(count, len(entities)))
            declared = {
                entity: rng.choice([AccessMode.READ, AccessMode.WRITE])
                for entity in chosen
            }
            pending[name] = [(mode, entity) for entity, mode in sorted(declared.items())]
            rng.shuffle(pending[name])
            steps.append(BeginDeclared(name, declared))
        else:
            txn = rng.choice(runnable)
            ops = pending[txn]
            if not ops:
                steps.append(Finish(txn))
                pending[txn] = None
                continue
            mode, entity = ops.pop()
            if mode.is_write:
                steps.append(WriteItem(txn, entity))
            else:
                steps.append(Read(txn, entity))
    return steps


def _lockstep_predeclared(graph: ReducedGraph, deleted, continuation) -> bool:
    original = PredeclaredScheduler(graph.copy())
    reduced = PredeclaredScheduler(graph.reduced_by(deleted))
    for step in continuation:
        result_o = original.feed(step)
        result_r = reduced.feed(step)
        if result_o.decision is not result_r.decision:
            return False
        if [str(s) for s in result_o.released] != [str(s) for s in result_r.released]:
            return False
    return True


class TestC4Sufficiency:
    @given(
        predeclared_step_streams(max_txns=4, max_entities=4, max_steps=16),
        st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_c4_approved_deletions_never_diverge(self, steps, cont_seed):
        scheduler = PredeclaredScheduler()
        scheduler.feed_many(steps)
        graph = scheduler.graph
        for txn in sorted(graph.completed_transactions()):
            if not can_delete_predeclared(graph, txn):
                continue
            continuation = _random_predeclared_continuation(graph, cont_seed)
            assert _lockstep_predeclared(graph, [txn], continuation), (
                f"C4 approved {txn} but schedulers diverged; "
                f"prefix={steps}, continuation={continuation}"
            )

    @given(
        predeclared_step_streams(max_txns=4, max_entities=4, max_steps=16),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_repeated_c4_deletions_never_diverge(self, steps, cont_seed):
        scheduler = PredeclaredScheduler()
        scheduler.feed_many(steps)
        graph = scheduler.graph
        trial = graph.copy()
        chosen: list = []
        progress = True
        while progress:
            progress = False
            for txn in sorted(trial.completed_transactions()):
                if can_delete_predeclared(trial, txn):
                    trial.delete(txn)
                    chosen.append(txn)
                    progress = True
        if not chosen:
            return
        continuation = _random_predeclared_continuation(graph, cont_seed)
        assert _lockstep_predeclared(graph, chosen, continuation)

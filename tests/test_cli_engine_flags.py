"""CLI smoke tests for the engine-era flags (registry names, sweeps)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


class TestRunFlags:
    def test_predeclared_eager_c4_with_sweep_interval(self, capsys):
        code = cli_main(
            ["run", "--scheduler", "predeclared", "--policy", "eager-c4",
             "--sweep-interval", "8", "--transactions", "12",
             "--entities", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "graph size" in out
        assert "interval 8" in out  # the sweep/stats line
        assert "deleted:" in out

    def test_canonical_and_alias_names(self, capsys):
        for name in ["conflict-graph", "conflict"]:
            assert cli_main(
                ["run", "--scheduler", name, "--policy", "eager-c1",
                 "--transactions", "8", "--entities", "4"]
            ) == 0
        assert cli_main(
            ["run", "--scheduler", "strict-2pl", "--policy", "never",
             "--transactions", "8", "--entities", "4"]
        ) == 0

    def test_incompatible_pair_rejected_with_exit_code(self, capsys):
        code = cli_main(
            ["run", "--scheduler", "conflict-graph", "--policy", "eager-c4",
             "--transactions", "8", "--entities", "4"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "eager-c4" in err and "compatible" in err

    def test_unknown_name_fails_argparse(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "--scheduler", "quantum"])

    def test_sweep_interval_validation(self, capsys):
        code = cli_main(
            ["run", "--sweep-interval", "0", "--transactions", "8",
             "--entities", "4"]
        )
        assert code == 2
        assert "sweep_interval" in capsys.readouterr().err


class TestSubprocessSmoke:
    def test_python_dash_m_repro_run(self):
        """The literal command from the issue: exit code and stats output."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "run",
             "--scheduler", "predeclared", "--policy", "eager-c4",
             "--sweep-interval", "8",
             "--transactions", "12", "--entities", "5"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC)},
            cwd=str(REPO_ROOT),
        )
        assert result.returncode == 0, result.stderr
        assert "accepted" in result.stdout      # metrics table header
        assert "graph size" in result.stdout    # series line
        assert "sweeps:" in result.stdout       # engine stats line

    def test_compare_with_sweep_interval(self, capsys):
        assert cli_main(
            ["compare", "--sweep-interval", "4", "--transactions", "10",
             "--entities", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "eager-c1" in out and "never" in out

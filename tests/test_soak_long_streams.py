"""Soak tests: long streams, every scheduler, audited end to end.

These are the closest thing to a production burn-in: several hundred
transactions with hotspot skew, mid-run policy GC, and full offline audits
at the end.  They also pin the headline systems claim — bounded graphs
under the C1 policy versus linear growth without it.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import run_with_policy
from repro.core.bounds import irreducible_bound
from repro.core.policies import (
    EagerC1Policy,
    EagerC4Policy,
    Lemma1Policy,
    NeverDeletePolicy,
    NoncurrentPolicy,
)
from repro.manager import GarbageCollectedScheduler
from repro.scheduler.certifier import Certifier
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.scheduler.locking import StrictTwoPhaseLocking
from repro.scheduler.multiwrite import MultiwriteScheduler
from repro.scheduler.predeclared import PredeclaredScheduler
from repro.workloads.banking import BankingConfig, banking_stream
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

LONG = WorkloadConfig(
    n_transactions=300,
    n_entities=12,
    multiprogramming=6,
    write_fraction=0.45,
    zipf_s=0.8,
    seed=777,
)


class TestLongBasicStreams:
    def test_eager_c1_bounded_by_ae(self):
        metrics = run_with_policy(
            ConflictGraphScheduler(), basic_stream(LONG), EagerC1Policy(),
            audit_csr=True,
        )
        bound = irreducible_bound(LONG.multiprogramming, LONG.n_entities)
        assert metrics.peak_retained_completed <= bound
        assert metrics.deleted_transactions > 200

    def test_never_grows_linearly(self):
        metrics = run_with_policy(
            ConflictGraphScheduler(), basic_stream(LONG), NeverDeletePolicy(),
            audit_csr=True,
        )
        committed = metrics.committed_transactions
        assert metrics.peak_retained_completed == committed > 200

    @pytest.mark.parametrize(
        "policy_factory", [Lemma1Policy, NoncurrentPolicy],
        ids=["lemma1", "noncurrent"],
    )
    def test_sufficient_policies_audited(self, policy_factory):
        metrics = run_with_policy(
            ConflictGraphScheduler(), basic_stream(LONG), policy_factory(),
            audit_csr=True,
        )
        assert metrics.deleted_transactions > 100

    def test_locking_and_certifier_soak(self):
        for scheduler in (StrictTwoPhaseLocking(), Certifier()):
            metrics = run_with_policy(scheduler, basic_stream(LONG), audit_csr=True)
            assert metrics.committed_transactions > 150

    def test_banking_soak(self):
        config = BankingConfig(
            n_accounts=20, n_transfers=200, audit_every=20, audit_span=12,
            multiprogramming=8, seed=5,
        )
        metrics = run_with_policy(
            ConflictGraphScheduler(), banking_stream(config), EagerC1Policy(),
            audit_csr=True,
        )
        assert metrics.peak_retained_completed <= irreducible_bound(8, 20)


class TestLongVariantStreams:
    def test_multiwrite_soak(self):
        config = WorkloadConfig(
            n_transactions=150, n_entities=10, multiprogramming=4,
            write_fraction=0.5, zipf_s=0.6, seed=31,
        )
        metrics = run_with_policy(
            MultiwriteScheduler(), multiwrite_stream(config), audit_csr=True
        )
        assert metrics.committed_transactions > 100

    def test_predeclared_soak_with_gc(self):
        config = WorkloadConfig(
            n_transactions=150, n_entities=10, multiprogramming=4,
            write_fraction=0.5, zipf_s=0.6, seed=32,
        )
        metrics = run_with_policy(
            PredeclaredScheduler(), predeclared_stream(config), EagerC4Policy(),
            audit_csr=True,
        )
        assert metrics.aborted_transactions == 0  # delays, never aborts
        assert metrics.deleted_transactions >= 140

    def test_gc_facade_soak_with_verification(self):
        gc = GarbageCollectedScheduler(
            ConflictGraphScheduler(), EagerC1Policy(), verify_c2=True
        )
        gc.feed_many(basic_stream(LONG))
        assert gc.stats.deletions > 200
        assert gc.stats.peak_retained_completed <= irreducible_bound(
            LONG.multiprogramming, LONG.n_entities
        )

"""Chaos equivalence: scheduled faults must never change the answer.

The chaos-readiness gate (CI refuses to pass if this module is skipped,
like the kernel/sharding/crash equivalence suites).  Two layers:

**Storage chaos** — a :class:`~repro.faults.FaultPlan` generated from a
(hypothesis-chosen) seed is injected into a durable engine's storage
I/O.  The driver plays an ordinary workload; every time a fault fires it
does what a supervisor would — abandons the engine mid-flight
(``simulate_crash``) and ``recover()``s the directory — then resolves
the *indeterminate outcome* the honest way: the step is re-fed only if
the recovered ``seq`` shows it never reached the log.  At the end the
engine must be **byte-identical** to an oracle that ran the same stream
with no faults at all, across all five schedulers and ``shards ∈ {1,4}``
— no acknowledged write lost, no step applied twice, no divergence.

**Serving chaos** — the same plans aimed at a live
:class:`~repro.server.ReproServer`: worker crashes demote the tenant,
reads keep answering from the degraded engine while writes are rejected
with structured ``degraded`` errors, supervised recovery brings the
tenant back, and :meth:`~repro.client.AsyncServingClient.feed_resumable`
drives the full stream to completion across crashes and connection
drops using the durable ``wal_seq`` watermark.  Client-side fault
handling (reconnect-on-drop for idempotent reads, per-request deadlines,
bounded retry budgets) is pinned here too.

No pytest-asyncio in the image: server tests run ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import pathlib
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import AsyncServingClient
from repro.durability import DurableEngine, recover
from repro.engine import build_engine
from repro.errors import (
    ConnectionDroppedError,
    DurabilityError,
    RequestTimeoutError,
    RetriesExhaustedError,
    TenantDegradedError,
)
from repro.faults import FaultPlan, FaultSpec, FaultyIO, InjectedIOError
from repro.io import engine_snapshot_to_json
from repro.server import ReproServer
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

#: (scheduler, canonical policy, stream factory) — all five schedulers.
CASES = [
    ("conflict-graph", "eager-c1", basic_stream),
    ("certifier", "noncurrent", basic_stream),
    ("strict-2pl", "lemma1", basic_stream),
    ("multiwrite", "eager-c3", multiwrite_stream),
    ("predeclared", "eager-c4", predeclared_stream),
]

SHARD_COUNTS = [1, 4]


def _workload(seed: int) -> WorkloadConfig:
    return WorkloadConfig(
        n_transactions=40,
        n_entities=14,
        multiprogramming=5,
        write_fraction=0.5,
        max_accesses=3,
        zipf_s=0.4,
        seed=seed,
        partitions=4,
        cross_fraction=0.25,
    )


def _fingerprint(engine):
    return {
        "snapshot": engine_snapshot_to_json(engine.snapshot()),
        "accepted": [str(s) for s in engine.accepted_subschedule()],
        "deleted": list(engine.stats.deleted_ids),
        "aborted": sorted(engine.aborted),
    }


def _oracle(scheduler, policy, shards, stream):
    oracle = build_engine(
        None, shards=shards, scheduler=scheduler, policy=policy
    )
    for step in stream:
        oracle.feed(step)
    return oracle


# ---------------------------------------------------------------------------
# Storage chaos
# ---------------------------------------------------------------------------


def _recover_until_it_sticks(wal_dir, io):
    """recover() may itself hit scheduled faults; a supervisor retries.
    Fault plans are finite, so this terminates."""
    while True:
        try:
            return recover(wal_dir, io=io)
        except (InjectedIOError, OSError):
            continue


def _run_storage_chaos(scheduler, policy, streamer, shards, fault_seed,
                       n_faults, checkpoint_interval):
    stream = list(streamer(_workload(fault_seed % 1000)))
    plan = FaultPlan.generate(
        fault_seed, n_faults=n_faults, horizon=max(1, len(stream))
    )
    io = FaultyIO(plan)
    wal_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-")) / "wal"
    try:
        durable = DurableEngine(
            scheduler=scheduler, policy=policy, wal_dir=wal_dir,
            shards=shards, checkpoint_interval=checkpoint_interval, io=io,
        )
        crashes = 0
        index = 0
        while index < len(stream):
            expected = durable.seq + 1
            try:
                durable.feed(stream[index])
            except (OSError, DurabilityError):
                # A fault fired somewhere in the feed. Crash + recover,
                # then resolve the indeterminate outcome from the log:
                # the step is re-fed only if its record never landed.
                crashes += 1
                durable.simulate_crash()
                durable = _recover_until_it_sticks(wal_dir, io)
                if durable.seq >= expected:
                    index += 1
                continue
            index += 1
        fingerprint = _fingerprint(durable.engine)
        durable.close()
        oracle = _oracle(scheduler, policy, shards, stream)
        assert fingerprint == _fingerprint(oracle), (
            f"{scheduler}/{policy} K={shards} fault_seed={fault_seed}: "
            f"chaos run diverged from the fault-free oracle "
            f"({crashes} crashes, fired={plan.fired})"
        )
        # One final cold recovery: the directory the chaos run left
        # behind is itself a clean, recoverable log.
        final = recover(wal_dir)
        assert _fingerprint(final.engine) == fingerprint
        final.close()
    finally:
        shutil.rmtree(wal_dir.parent, ignore_errors=True)


class TestStorageChaosAllSchedulers:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize(
        "scheduler,policy,streamer",
        CASES,
        ids=[f"{s}-{p}" for s, p, _ in CASES],
    )
    def test_fixed_plan_equivalence(self, scheduler, policy, streamer, shards):
        _run_storage_chaos(
            scheduler, policy, streamer, shards,
            fault_seed=1986, n_faults=6, checkpoint_interval=16,
        )

    def test_dense_fault_plan_single_scheduler(self):
        """Many faults against one engine: most feeds end in a crash."""
        _run_storage_chaos(
            "conflict-graph", "eager-c1", basic_stream, shards=4,
            fault_seed=7, n_faults=24, checkpoint_interval=8,
        )


class TestStorageChaosHypothesis:
    @settings(max_examples=8, deadline=None)
    @given(
        fault_seed=st.integers(min_value=0, max_value=2**16),
        shards=st.sampled_from(SHARD_COUNTS),
        case=st.sampled_from(range(len(CASES))),
        n_faults=st.integers(min_value=1, max_value=12),
        checkpoint_interval=st.sampled_from([0, 8, 32]),
    )
    def test_randomized_fault_plans(
        self, fault_seed, shards, case, n_faults, checkpoint_interval
    ):
        scheduler, policy, streamer = CASES[case]
        _run_storage_chaos(
            scheduler, policy, streamer, shards, fault_seed, n_faults,
            checkpoint_interval,
        )


# ---------------------------------------------------------------------------
# Serving chaos
# ---------------------------------------------------------------------------


def _steps(stream_seed: int = 31, n: int = 60):
    return list(basic_stream(_workload(stream_seed)))[:n]


async def _poll_until_serving(client, tenant, *, budget=400):
    for _ in range(budget):
        info = await client.tenant_info(tenant)
        if info["state"] == "serving":
            return info
        await asyncio.sleep(0.01)
    raise AssertionError(f"tenant {tenant!r} never returned to serving")


class TestServingChaos:
    def test_degraded_tenant_serves_reads_rejects_writes_then_heals(
        self, tmp_path
    ):
        async def _run() -> None:
            plan = FaultPlan([
                # The second work item crashes the worker; the first two
                # recovery attempts fail too, widening the degraded
                # window enough to observe it deterministically.
                FaultSpec(site="server.worker", at=2, kind="crash"),
                FaultSpec(site="recover.start", at=1, kind="io_error"),
                FaultSpec(site="recover.start", at=2, kind="io_error"),
            ])
            server = ReproServer(
                fault_plan=plan, recover_backoff=0.05,
                recover_backoff_cap=0.2, recover_max_attempts=10,
            )
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", wal_dir=str(tmp_path / "wal"),
                        scheduler="conflict-graph", policy="eager-c1",
                        checkpoint_interval=16,
                    )
                    batch1 = _steps()[:12]
                    await c.feed_batch("t", batch1)
                    with pytest.raises(TenantDegradedError) as info:
                        await c.feed_batch("t", _steps()[12:24])
                    assert info.value.code == "degraded"
                    assert info.value.retry_after > 0
                    # The degraded window: reads still answer (served
                    # from the last consistent in-memory state) ...
                    audit = await c.audit("t", batch1[0].txn)
                    assert audit["status"] in (
                        "live", "completed", "deleted", "aborted"
                    )
                    assert isinstance(await c.query("t", "deleted"), list)
                    metrics = await c.metrics()
                    assert metrics["tenants"]["t"]["state"] in (
                        "degraded", "recovering", "serving"
                    )
                    # ... and unacknowledged writes are refused with the
                    # structured error, not silently dropped or hung.
                    with pytest.raises(TenantDegradedError):
                        await c.feed_batch("t", _steps()[12:24])
                    info = await _poll_until_serving(c, "t")
                    assert info["demotions"] == 1
                    assert info["recoveries"] == 1
                    assert info["recover_attempts"] >= 3  # two injected failures
                    assert info["wal_seq"] == len(batch1)
                    # Healed: the write path works again.
                    await c.feed_batch("t", _steps()[12:24])
            finally:
                await server.close()
            # Supervision never lost an acknowledged write: the final
            # state equals an oracle fed exactly the acknowledged batches.
            check = recover(tmp_path / "wal")
            oracle = _oracle(
                "conflict-graph", "eager-c1", 1,
                _steps()[:12] + _steps()[12:24],
            )
            assert _fingerprint(check.engine) == _fingerprint(oracle)
            check.close()

        asyncio.run(_run())

    def test_feed_resumable_survives_crashes_drops_and_torn_writes(
        self, tmp_path
    ):
        async def _run() -> None:
            stream = _steps(stream_seed=37, n=80)
            plan = FaultPlan([
                FaultSpec(site="server.worker", at=3, kind="crash"),
                FaultSpec(site="wal.append", at=29, kind="torn_write"),
                FaultSpec(site="server.worker", at=11, kind="crash"),
                FaultSpec(site="server.connection", at=9, kind="drop"),
            ])
            server = ReproServer(
                fault_plan=plan, recover_backoff=0.01,
                recover_backoff_cap=0.05, recover_max_attempts=10,
            )
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(
                    host, port, timeout=10.0
                ) as c:
                    await c.create_tenant(
                        "t", wal_dir=str(tmp_path / "wal"),
                        scheduler="conflict-graph", policy="eager-c1",
                        checkpoint_interval=16,
                    )
                    totals = await c.feed_resumable(
                        "t", stream, chunk=8, backoff=0.005,
                        backoff_cap=0.05, max_retries=32,
                    )
                    # Every step was either summarized to us or resynced
                    # from the durable watermark — none lost, none fed
                    # twice.
                    assert totals["count"] + totals["resynced"] == len(stream)
                    info = await _poll_until_serving(c, "t")
                    assert info["wal_seq"] == len(stream)
                    assert info["demotions"] >= 1
            finally:
                await server.close()
            check = recover(tmp_path / "wal")
            oracle = _oracle("conflict-graph", "eager-c1", 1, stream)
            assert _fingerprint(check.engine) == _fingerprint(oracle)
            check.close()

        asyncio.run(_run())

    def test_recovery_budget_exhaustion_is_terminal_and_loud(self, tmp_path):
        async def _run() -> None:
            plan = FaultPlan(
                [FaultSpec(site="server.worker", at=2, kind="crash")]
                + [
                    FaultSpec(site="recover.start", at=i, kind="io_error")
                    for i in range(1, 9)
                ]
            )
            server = ReproServer(
                fault_plan=plan, recover_backoff=0.005,
                recover_backoff_cap=0.02, recover_max_attempts=3,
            )
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", wal_dir=str(tmp_path / "wal"),
                        scheduler="conflict-graph", policy="eager-c1",
                    )
                    await c.feed_batch("t", _steps()[:6])
                    with pytest.raises(TenantDegradedError):
                        await c.feed_batch("t", _steps()[6:12])
                    # Wait for the supervisor to burn its budget.
                    for _ in range(400):
                        info = await c.tenant_info("t")
                        if info["recovery_exhausted"]:
                            break
                        await asyncio.sleep(0.01)
                    assert info["recovery_exhausted"]
                    assert info["state"] == "degraded"
                    assert info["recover_attempts"] == 3
                    # feed_all bails out immediately on a terminal
                    # degradation instead of burning its retry budget.
                    with pytest.raises(RetriesExhaustedError) as err:
                        await c.feed_all("t", _steps()[6:12], max_retries=50)
                    assert err.value.attempts == 1
                    # Reads still answer even in the terminal state.
                    assert isinstance(await c.query("t", "live"), list)
            finally:
                await server.close()

        asyncio.run(_run())


class TestClientFaultHandling:
    def test_idempotent_reads_reconnect_after_drop(self, tmp_path):
        async def _run() -> None:
            plan = FaultPlan([
                FaultSpec(site="server.connection", at=3, kind="drop"),
            ])
            server = ReproServer(fault_plan=plan)
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.ping()      # occurrence 1
                    await c.metrics()   # occurrence 2
                    # occurrence 3 drops the transport mid-request; an
                    # idempotent read transparently reconnects + retries.
                    assert (await c.ping())["server"] == "repro"
            finally:
                await server.close()

        asyncio.run(_run())

    def test_write_drop_surfaces_as_connection_error(self, tmp_path):
        async def _run() -> None:
            plan = FaultPlan([
                FaultSpec(site="server.connection", at=2, kind="drop"),
            ])
            server = ReproServer(fault_plan=plan)
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", scheduler="conflict-graph", policy="eager-c1"
                    )
                    # The write's outcome is indeterminate: it must NOT
                    # be silently retried.
                    with pytest.raises(ConnectionDroppedError):
                        await c.feed_batch("t", _steps()[:6])
                    # The connection heals for the next request.
                    assert (await c.ping())["tenants"] == 1
            finally:
                await server.close()

        asyncio.run(_run())

    def test_request_deadline_raises_timeout(self):
        async def _run() -> None:
            async def _black_hole(reader, writer):
                await reader.read(-1)  # swallow everything, answer nothing

            silent = await asyncio.start_server(_black_hole, "127.0.0.1", 0)
            host, port = silent.sockets[0].getsockname()[:2]
            try:
                async with await AsyncServingClient.connect(
                    host, port, timeout=0.1
                ) as c:
                    with pytest.raises(RequestTimeoutError):
                        await c.ping()
            finally:
                silent.close()
                await silent.wait_closed()

        asyncio.run(_run())

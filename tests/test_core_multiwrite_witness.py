"""Lemma 4 necessity, executable: multiwrite witness continuations.

Every C3 violation must yield a continuation on which original and reduced
multiwrite schedulers diverge — including the violations produced by the
Theorem 6 3-SAT reduction, whose abort sets encode satisfying assignments.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.multiwrite_conditions import (
    c3_violation_witness,
    can_delete_multiwrite,
)
from repro.core.witnesses import (
    check_multiwrite_divergence,
    multiwrite_witness_continuation,
)
from repro.errors import DeletionError
from repro.model.status import AccessMode as M
from repro.reductions.sat import CnfFormula, dpll, random_3sat
from repro.reductions.thm6 import Theorem6Reduction
from repro.scheduler.multiwrite import MultiwriteScheduler

from tests.conftest import build_graph, multiwrite_step_streams


class TestGadgetMechanics:
    def _pinned_graph(self):
        return build_graph(
            {"A": "A", "T": "C"},
            [("A", "T")],
            [("T", "x", M.WRITE)],
        )

    def test_empty_abort_set_witness(self):
        graph = self._pinned_graph()
        continuation = multiwrite_witness_continuation(graph, "T")
        # M = ∅: no abort gadget, just the closing access by A.
        assert len(continuation) == 1
        divergence = check_multiwrite_divergence(graph, ["T"], continuation)
        assert divergence is not None

    def test_refused_when_c3_holds(self):
        graph = build_graph(
            {"A": "A", "T": "C", "W": "C"},
            [("A", "T"), ("A", "W")],
            [("T", "x", M.WRITE), ("W", "x", M.WRITE)],
        )
        with pytest.raises(DeletionError):
            multiwrite_witness_continuation(graph, "T")

    def test_abort_gadget_kills_exactly_m_plus(self):
        # Witness W reachable only through active Mid: the violation needs
        # M = {Mid}; the gadget must abort Mid (and nothing else relevant).
        graph = build_graph(
            {"A": "A", "Mid": "A", "T": "C", "W": "C"},
            [("A", "T"), ("A", "Mid"), ("Mid", "W")],
            [("T", "x", M.WRITE), ("W", "x", M.WRITE)],
        )
        violation = c3_violation_witness(graph, "T")
        assert violation.abort_set == frozenset({"Mid"})
        continuation = multiwrite_witness_continuation(graph, "T", violation)
        divergence = check_multiwrite_divergence(graph, ["T"], continuation)
        assert divergence is not None
        assert divergence.step == continuation[-1]

    def test_read_direction(self):
        # Candidate only READ x: the closing step must WRITE x.
        graph = build_graph(
            {"A": "A", "T": "C"},
            [("A", "T")],
            [("T", "x", M.READ)],
        )
        continuation = multiwrite_witness_continuation(graph, "T")
        from repro.model.steps import WriteItem

        assert isinstance(continuation[-1], WriteItem)
        assert check_multiwrite_divergence(graph, ["T"], continuation) is not None


class TestRandomizedNecessity:
    @given(multiwrite_step_streams(max_txns=4, max_entities=3, max_steps=16))
    @settings(max_examples=60, deadline=None)
    def test_every_violation_has_diverging_continuation(self, steps):
        scheduler = MultiwriteScheduler()
        scheduler.feed_many(steps)
        graph = scheduler.graph
        if len(graph.active_transactions()) > 8:
            return
        for txn in sorted(graph.committed_transactions()):
            violation = c3_violation_witness(graph, txn, max_actives=10)
            if violation is None:
                continue
            continuation = multiwrite_witness_continuation(graph, txn, violation)
            divergence = check_multiwrite_divergence(graph, [txn], continuation)
            assert divergence is not None, (
                f"C3 rejected {txn} (violation {violation}) but the gadget "
                f"found no divergence; steps={steps}"
            )


class TestTheorem6Witnesses:
    """The grand tour: SAT formula -> Fig. 3 graph -> C3 violation ->
    executable diverging schedule."""

    @pytest.mark.parametrize("seed", range(4))
    def test_sat_instances_yield_executable_counterexamples(self, seed):
        formula = random_3sat(3, 5, seed=seed)
        if dpll(formula) is None:
            pytest.skip("unsatisfiable draw: C is deletable, no witness")
        reduction = Theorem6Reduction(formula)
        graph = reduction.build_graph()
        violation = c3_violation_witness(graph, "C")
        assert violation is not None
        continuation = multiwrite_witness_continuation(graph, "C", violation)
        divergence = check_multiwrite_divergence(graph, ["C"], continuation)
        assert divergence is not None
        # The diverging step is the closing access of y by the active A.
        assert divergence.step == continuation[-1]
        assert divergence.step.txn == violation.active_pred

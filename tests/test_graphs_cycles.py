"""Tests for cycle detection and topological sorting."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CycleError
from repro.graphs.cycles import (
    find_cycle,
    has_cycle,
    topological_order,
    would_arcs_close_cycle,
    would_close_cycle,
)
from repro.graphs.digraph import DiGraph


class TestHasCycle:
    def test_empty(self):
        assert not has_cycle(DiGraph())

    def test_dag(self):
        assert not has_cycle(DiGraph([("a", "b"), ("b", "c"), ("a", "c")]))

    def test_two_cycle(self):
        assert has_cycle(DiGraph([("a", "b"), ("b", "a")]))

    def test_long_cycle(self):
        arcs = [(i, (i + 1) % 5) for i in range(5)]
        assert has_cycle(DiGraph(arcs))

    def test_cycle_in_one_component(self):
        graph = DiGraph([("a", "b"), ("x", "y"), ("y", "x")])
        assert has_cycle(graph)


class TestFindCycle:
    def test_none_for_dag(self):
        assert find_cycle(DiGraph([("a", "b")])) is None

    def test_returns_closed_walk(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        cycle = find_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        for tail, head in zip(cycle, cycle[1:]):
            assert graph.has_arc(tail, head)


class TestTopologicalOrder:
    def test_respects_arcs(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        order = topological_order(graph)
        position = {node: i for i, node in enumerate(order)}
        for tail, head in graph.arcs():
            assert position[tail] < position[head]

    def test_raises_on_cycle(self):
        with pytest.raises(CycleError):
            topological_order(DiGraph([("a", "b"), ("b", "a")]))

    def test_tie_break(self):
        graph = DiGraph()
        for node in ("p", "q", "r"):
            graph.add_node(node)
        assert topological_order(graph, tie_break=["r", "q", "p"]) == ["r", "q", "p"]

    def test_deterministic_without_tie_break(self):
        graph = DiGraph()
        for node in ("b", "a", "c"):
            graph.add_node(node)
        assert topological_order(graph) == topological_order(graph)


class TestWouldCloseCycle:
    def test_self_loop(self):
        graph = DiGraph()
        graph.add_node("a")
        assert would_close_cycle(graph, "a", "a")

    def test_back_arc(self):
        graph = DiGraph([("a", "b"), ("b", "c")])
        assert would_close_cycle(graph, "c", "a")
        assert not would_close_cycle(graph, "a", "c")

    def test_multiple_arcs_same_head(self):
        graph = DiGraph([("a", "b")])
        graph.add_node("c")
        # (b -> c) and (a -> c): no cycle.
        assert not would_arcs_close_cycle(graph, [("b", "c"), ("a", "c")])
        # (b -> a) closes a cycle whatever else is inserted with it.
        assert would_arcs_close_cycle(graph, [("b", "a")])

    def test_mixed_heads_trial_insertion(self):
        graph = DiGraph([("a", "b")])
        graph.add_node("c")
        # c -> a and b -> c together close a cycle even though neither does
        # alone.
        assert would_arcs_close_cycle(graph, [("c", "a"), ("b", "c")])
        assert not would_arcs_close_cycle(graph, [("c", "a")])


_dag_arcs = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda p: p[0] != p[1]),
    max_size=18,
)


class TestAgainstNetworkx:
    @given(_dag_arcs)
    @settings(max_examples=100, deadline=None)
    def test_has_cycle_matches_networkx(self, arcs):
        graph = DiGraph()
        for i in range(8):
            graph.add_node(i)
        for tail, head in arcs:
            graph.add_arc(tail, head)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(8))
        nxg.add_edges_from(arcs)
        assert has_cycle(graph) == (not nx.is_directed_acyclic_graph(nxg))

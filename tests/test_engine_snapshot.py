"""Checkpoint/restore: a restored engine continues bit-identically."""

from __future__ import annotations

import json

import pytest

from repro.engine import Engine, SNAPSHOT_FORMAT
from repro.errors import EngineError, SnapshotError
from repro.io import graph_to_dict
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

CONFIG = WorkloadConfig(n_transactions=24, n_entities=6, seed=11)

#: (scheduler, policy, stream factory) for every model — including the
#: delaying schedulers, whose parked-step queues are the hard state to
#: carry across a checkpoint.
CASES = [
    ("conflict-graph", "eager-c1", basic_stream),
    ("conflict-graph", "noncurrent", basic_stream),
    ("certifier", "noncurrent", basic_stream),
    ("strict-2pl", "never", basic_stream),
    ("multiwrite", "eager-c3", multiwrite_stream),
    ("predeclared", "eager-c4", predeclared_stream),
]


def _engine_state(engine: Engine):
    """Everything observable that must survive a checkpoint."""
    return {
        "graph": graph_to_dict(engine.graph),
        "aborted": sorted(engine.aborted),
        "accepted": [str(s) for s in engine.accepted_subschedule()],
        "stats": engine.stats.as_dict(),
        "step_index": engine.step_index,
        "steps_since_sweep": engine.steps_since_sweep,
        "sweeps_run": engine.sweeps_run,
        "input": [str(s) for s in engine.scheduler.input_schedule],
    }


class TestSnapshotRestore:
    @pytest.mark.parametrize("scheduler,policy,stream_factory", CASES)
    def test_mid_stream_checkpoint_continues_identically(
        self, scheduler, policy, stream_factory
    ):
        stream = list(stream_factory(CONFIG))
        cut = len(stream) // 2

        uninterrupted = Engine(scheduler=scheduler, policy=policy,
                               sweep_interval=3)
        uninterrupted.feed_batch(stream)

        first_half = Engine(scheduler=scheduler, policy=policy,
                            sweep_interval=3)
        first_half.feed_batch(stream[:cut])
        # Round-trip through JSON to prove the payload is serializable.
        payload = json.loads(json.dumps(first_half.snapshot()))
        resumed = Engine.restore(payload)
        resumed.feed_batch(stream[cut:])

        assert _engine_state(resumed) == _engine_state(uninterrupted)

    def test_snapshot_is_a_frozen_copy(self):
        """Feeding the source engine after snapshotting must not mutate
        the snapshot or the restored engine."""
        stream = list(basic_stream(CONFIG))
        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        engine.feed_batch(stream[:10])
        snapshot = engine.snapshot()
        before = json.dumps(snapshot, sort_keys=True)
        engine.feed_batch(stream[10:])
        assert json.dumps(snapshot, sort_keys=True) == before
        restored = Engine.restore(snapshot)
        assert restored.step_index == 10

    def test_restore_preserves_config_and_cadence(self):
        engine = Engine(scheduler="predeclared", policy="eager-c4",
                        sweep_interval=8, verify_c2=False)
        engine.feed_batch(list(predeclared_stream(CONFIG))[:13])
        restored = Engine.restore(engine.snapshot())
        assert restored.config == engine.config
        assert restored.sweep_interval == 8
        assert restored.steps_since_sweep == engine.steps_since_sweep

    def test_restored_observers_see_only_new_events(self):
        from repro.engine import CallbackObserver

        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        stream = list(basic_stream(CONFIG))
        engine.feed_batch(stream[:8])
        seen = []
        restored = Engine.restore(
            engine.snapshot(),
            observers=[CallbackObserver(on_step=lambda e, r: seen.append(r))],
        )
        restored.feed_batch(stream[8:12])
        assert len(seen) == 4

    def test_policy_options_round_trip(self):
        engine = Engine(scheduler="conflict-graph", policy="optimal",
                        policy_options={"max_candidates": 9})
        restored = Engine.restore(engine.snapshot())
        assert restored.policy._max_candidates == 9


class TestSnapshotErrors:
    def test_unregistered_parts_cannot_snapshot(self):
        from repro.core.policies import NeverDeletePolicy
        from repro.scheduler.conflict import ConflictGraphScheduler

        class LocalPolicy(NeverDeletePolicy):
            name = "local"

        engine = Engine.from_parts(ConflictGraphScheduler(), LocalPolicy())
        with pytest.raises(EngineError):
            engine.snapshot()

    def test_registered_parts_can_snapshot_via_from_parts(self):
        from repro.core.policies import EagerC1Policy
        from repro.scheduler.conflict import ConflictGraphScheduler

        engine = Engine.from_parts(
            ConflictGraphScheduler(), EagerC1Policy(), sweep_interval=2
        )
        engine.feed_batch(list(basic_stream(CONFIG))[:6])
        restored = Engine.restore(engine.snapshot())
        assert restored.config.scheduler == "conflict-graph"
        assert restored.step_index == 6

    def test_bad_format_rejected(self):
        with pytest.raises(SnapshotError):
            Engine.restore({"format": SNAPSHOT_FORMAT + 1})
        with pytest.raises(SnapshotError):
            Engine.restore({"format": SNAPSHOT_FORMAT})  # missing sections
        with pytest.raises(SnapshotError):
            Engine.restore("not a dict")  # type: ignore[arg-type]

    def test_cross_variant_extra_state_rejected(self):
        engine = Engine(scheduler="predeclared", policy="never")
        engine.feed_batch(list(predeclared_stream(CONFIG))[:5])
        snapshot = engine.snapshot()
        snapshot["config"]["scheduler"] = "conflict-graph"
        with pytest.raises(SnapshotError):
            Engine.restore(snapshot)

"""The Theorem 5 and Theorem 6 reduction equivalences, end to end."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import can_delete
from repro.core.multiwrite_conditions import c3_violation_witness
from repro.core.set_conditions import can_delete_set
from repro.errors import ReductionError
from repro.reductions.sat import CnfFormula, dpll, random_3sat
from repro.reductions.setcover import SetCoverInstance, minimum_cover, random_instance
from repro.reductions.thm5 import Theorem5Reduction
from repro.reductions.thm6 import Theorem6Reduction
from repro.scheduler.multiwrite import MultiwriteScheduler


class TestTheorem5Structure:
    def _reduction(self):
        instance = SetCoverInstance(
            frozenset({1, 2, 3}),
            (frozenset({1, 2}), frozenset({2, 3}), frozenset({1}), frozenset({3})),
        )
        return Theorem5Reduction(instance)

    def test_uncoverable_rejected(self):
        with pytest.raises(ReductionError):
            Theorem5Reduction(
                SetCoverInstance(frozenset({1, 2}), (frozenset({1}),))
            )

    def test_nothing_deletable_before_last_step(self):
        red = self._reduction()
        graph = red.graph_before_last_step()
        for txn in graph.completed_transactions():
            assert not can_delete(graph, txn), f"{txn} deletable too early"

    def test_set_txns_deletable_after_last_step_iff_remaining_cover(self):
        red = self._reduction()
        graph = red.graph_after_last_step()
        # S3 = {1}: removing it leaves {1,2},{2,3},{3} which still covers.
        assert can_delete(graph, "T3")
        # The closer transaction violates C1 (its write of y is uncovered).
        assert not can_delete(graph, red.closer_transaction)

    def test_arcs_from_reader_to_all(self):
        red = self._reduction()
        graph = red.graph_after_last_step()
        for txn in red.set_transactions:
            assert graph.has_arc("T0", txn)
        assert graph.has_arc("T0", red.closer_transaction)

    def test_deletable_subset_iff_kept_is_cover(self):
        red = self._reduction()
        graph = red.graph_after_last_step()
        import itertools

        m = len(red.instance.subsets)
        for mask in range(2**m):
            chosen = [
                red.set_transactions[i] for i in range(m) if mask & (1 << i)
            ]
            kept = [i for i in range(m) if not (mask & (1 << i))]
            assert can_delete_set(graph, chosen) == red.instance.is_cover(kept)


class TestTheorem5Equivalence:
    @given(st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_max_deletable_equals_m_minus_min_cover(self, seed):
        instance = random_instance(5, 5, seed=seed)
        red = Theorem5Reduction(instance)
        measured = red.check_equivalence()
        assert measured["max_deletable_set_txns"] == measured["m"] - measured[
            "min_cover"
        ]


class TestTheorem6Structure:
    def _formula(self):
        return CnfFormula(3, ((1, -2, 3), (-1, 2, -3)))

    def test_graph_realizable_by_scheduler(self):
        """The hand-built Fig. 3 graph matches the graph the multiwrite
        scheduler constructs from the realizing schedule."""
        red = Theorem6Reduction(self._formula())
        direct = red.build_graph()
        scheduler = MultiwriteScheduler()
        for result in scheduler.feed_many(red.realizing_schedule()):
            assert not result.rejected, f"realizing schedule rejected: {result}"
        built = scheduler.graph
        assert built.nodes() == direct.nodes()
        assert set(built.arcs()) == set(direct.arcs())
        for txn in direct.nodes():
            assert built.state(txn) == direct.state(txn), txn
            assert built.info(txn).accesses == direct.info(txn).accesses
            assert built.info(txn).reads_from == direct.info(txn).reads_from

    def test_every_committed_except_c_violates_c3(self):
        red = Theorem6Reduction(self._formula())
        graph = red.build_graph()
        for txn in ("B", "D"):
            assert c3_violation_witness(graph, txn) is not None

    def test_clause_arity_enforced(self):
        with pytest.raises(ReductionError):
            Theorem6Reduction(CnfFormula(2, ((1, 2),)))

    def test_assignment_round_trip(self):
        red = Theorem6Reduction(self._formula())
        assignment = {1: True, 2: False, 3: True}
        abort_set = red.assignment_to_abort_set(assignment)
        assert red.abort_set_to_assignment(abort_set) == assignment


class TestTheorem6Equivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_c_deletable_iff_unsat(self, seed):
        # Over-constrained ratio so both outcomes appear across seeds.
        formula = random_3sat(3, 9, seed=seed)
        red = Theorem6Reduction(formula)
        satisfiable = dpll(formula) is not None
        assert red.c_is_deletable() == (not satisfiable), (
            f"seed={seed} satisfiable={satisfiable}"
        )

    def test_satisfying_assignment_is_a_c3_witness(self):
        formula = CnfFormula(3, ((1, 2, 3),))
        model = dpll(formula)
        assert model is not None
        red = Theorem6Reduction(formula)
        graph = red.build_graph()
        witness = c3_violation_witness(graph, "C")
        assert witness is not None
        # The discovered abort set induces a satisfying assignment.
        induced = red.abort_set_to_assignment(witness.abort_set)
        assert formula.evaluate(induced)

"""Fault-injection machinery: plans, the storage shim, the WAL lock,
and the torn-write artifact matrix.

Three layers of guarantees are pinned here:

* **The injector itself** — :class:`repro.faults.FaultPlan` is
  deterministic (same seed, same plan; same plan, same firing sequence),
  validates its specs, and round-trips through JSON for
  ``repro serve --fault-plan``.
* **The durability layer under injected storage faults** — a failed or
  torn WAL append poisons the engine (appending past a torn record would
  bury it mid-file), failed checkpoints leave the log authoritative, a
  failed rename leaves the complete-but-unpublished tmp file behind, and
  ``recover()`` shrugs all of it off.
* **The torn-write matrix** — every combination of {torn WAL tail} x
  {torn checkpoint tmp file} x {failed directory fsync after checkpoint
  publish} must recover to exactly the oracle state or abort loudly;
  silently-wrong is the one forbidden outcome.  Damage beyond the
  single-crash envelope (two torn tails, a torn record mid-file, a
  corrupt checkpoint) must abort.
"""

from __future__ import annotations

import errno
import json
import os

import pytest

from repro.durability import DurableEngine, LOCK_NAME, open_durable, recover
from repro.engine import build_engine
from repro.errors import (
    DurabilityError,
    RecoveryError,
    ReproError,
    WalCorruptionError,
    WalLockedError,
)
from repro.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    FaultyIO,
    InjectedIOError,
)
from repro.io import engine_snapshot_to_json
from repro.model.steps import Begin
from repro.workloads.generator import WorkloadConfig, basic_stream


def _stream(seed: int = 7, n: int = 40):
    return list(basic_stream(WorkloadConfig(
        n_transactions=n, n_entities=12, multiprogramming=4,
        write_fraction=0.5, max_accesses=3, zipf_s=0.3, seed=seed,
    )))


def _fingerprint(engine):
    return engine_snapshot_to_json(engine.snapshot())


def _oracle(steps, **config):
    oracle = build_engine(None, scheduler="conflict-graph",
                          policy="eager-c1", **config)
    for step in steps:
        oracle.feed(step)
    return oracle


# ---------------------------------------------------------------------------
# The plan itself
# ---------------------------------------------------------------------------


class TestFaultSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultSpec(site="wal.nope", at=1, kind="io_error")

    def test_illegal_kind_for_site_rejected(self):
        with pytest.raises(ReproError, match="not legal at site"):
            FaultSpec(site="dir.fsync", at=1, kind="torn_write")

    def test_occurrence_must_be_positive(self):
        with pytest.raises(ReproError, match="'at' must be"):
            FaultSpec(site="wal.append", at=0, kind="io_error")

    def test_every_declared_site_kind_pair_constructs(self):
        for site, kinds in FAULT_SITES.items():
            for kind in kinds:
                FaultSpec(site=site, at=1, kind=kind)


class TestFaultPlan:
    def test_fire_counts_occurrences_and_returns_due_specs(self):
        spec = FaultSpec(site="wal.append", at=3, kind="io_error")
        plan = FaultPlan([spec])
        assert plan.fire("wal.append") == []
        assert plan.fire("wal.append") == []
        assert plan.fire("wal.append") == [spec]
        assert plan.fire("wal.append") == []
        assert plan.occurrences("wal.append") == 4
        assert plan.fired == [("wal.append", 3, spec)]

    def test_reset_replays_the_same_plan(self):
        spec = FaultSpec(site="wal.fsync", at=1, kind="io_error")
        plan = FaultPlan([spec])
        assert plan.fire("wal.fsync") == [spec]
        plan.reset()
        assert plan.occurrences("wal.fsync") == 0
        assert plan.fire("wal.fsync") == [spec]

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.generate(99, n_faults=6, horizon=50)
        path = tmp_path / "plan.json"
        plan.dump(path)
        loaded = FaultPlan.load(path)
        assert loaded.faults == plan.faults
        assert loaded.seed == 99

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="cannot load fault plan"):
            FaultPlan.load(path)
        path.write_text(json.dumps({"format": 1, "kind": "wrong"}))
        with pytest.raises(ReproError, match="unsupported fault-plan"):
            FaultPlan.load(path)

    def test_generate_is_deterministic_and_storage_only(self):
        a = FaultPlan.generate(1234, n_faults=8, horizon=100)
        b = FaultPlan.generate(1234, n_faults=8, horizon=100)
        assert a.faults == b.faults
        assert a.faults  # a seed that yields at least one fault
        for spec in a.faults:
            assert not spec.site.startswith("server.")
        assert FaultPlan.generate(1235, n_faults=8, horizon=100).faults != a.faults


# ---------------------------------------------------------------------------
# Storage faults against the durable engine
# ---------------------------------------------------------------------------


class TestInjectedStorageFaults:
    def test_failed_append_poisons_engine_and_recovery_resumes(self, tmp_path):
        steps = _stream()
        plan = FaultPlan([FaultSpec(site="wal.append", at=11, kind="io_error")])
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", checkpoint_interval=0,
            io=FaultyIO(plan),
        )
        fed = 0
        with pytest.raises(InjectedIOError):
            for step in steps:
                durable.feed(step)
                fed += 1
        assert fed == 10
        # Poisoned: the segment may end in a torn record; feeding more
        # must be refused, loudly.
        with pytest.raises(DurabilityError, match="storage fault"):
            durable.feed(steps[fed])
        durable.simulate_crash()
        recovered = recover(tmp_path / "wal")
        assert recovered.seq == 10
        for step in steps[fed:]:
            recovered.feed(step)
        assert _fingerprint(recovered.engine) == _fingerprint(_oracle(steps))
        recovered.close()

    def test_torn_append_is_dropped_and_repaired(self, tmp_path):
        steps = _stream(seed=8)
        plan = FaultPlan([
            FaultSpec(site="wal.append", at=7, kind="torn_write", keep=9),
        ])
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", checkpoint_interval=0,
            io=FaultyIO(plan),
        )
        with pytest.raises(InjectedIOError):
            for step in steps:
                durable.feed(step)
        durable.simulate_crash()
        # The torn prefix really is on disk.
        segments = list((tmp_path / "wal" / "segments").iterdir())
        assert any(
            not segment.read_text().endswith("\n") for segment in segments
        )
        recovered = recover(tmp_path / "wal")
        assert recovered.recovery_info.torn_records_dropped == 1
        assert recovered.recovery_info.repaired_segments
        assert recovered.seq == 6  # the torn 7th record never happened
        recovered.close()
        # The repair truncated the torn line in place.
        for segment in (tmp_path / "wal" / "segments").iterdir():
            text = segment.read_text()
            assert text == "" or text.endswith("\n")

    def test_enospc_checkpoint_leaves_log_authoritative(self, tmp_path):
        steps = _stream(seed=9)
        plan = FaultPlan([
            FaultSpec(site="checkpoint.write", at=1, kind="enospc"),
        ])
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", checkpoint_interval=0,
            io=FaultyIO(plan),
        )
        for step in steps:
            durable.feed(step)
        with pytest.raises(InjectedIOError) as info:
            durable.checkpoint()
        assert info.value.errno == errno.ENOSPC
        # The full-disk checkpoint never published; no tmp litter either.
        checkpoints = tmp_path / "wal" / "checkpoints"
        assert list(checkpoints.iterdir()) == []
        # The append path was untouched: the engine is NOT poisoned,
        # keeps logging, and a retried checkpoint (disk freed) succeeds.
        durable.feed(Begin("fresh-after-enospc"))
        assert durable.checkpoint() == len(steps) + 1
        durable.simulate_crash()
        recovered = recover(tmp_path / "wal")
        assert recovered.seq == len(steps) + 1
        recovered.close()

    def test_failed_replace_keeps_tmp_and_recovery_ignores_it(self, tmp_path):
        steps = _stream(seed=10)
        plan = FaultPlan([
            FaultSpec(site="checkpoint.replace", at=1, kind="io_error"),
        ])
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", checkpoint_interval=0,
            io=FaultyIO(plan),
        )
        for step in steps:
            durable.feed(step)
        with pytest.raises(InjectedIOError):
            durable.checkpoint()
        durable.simulate_crash()
        checkpoints = tmp_path / "wal" / "checkpoints"
        leftovers = list(checkpoints.iterdir())
        # The crashed-between-write-and-rename artifact: a complete tmp
        # file, no published checkpoint.
        assert len(leftovers) == 1
        assert ".tmp-" in leftovers[0].name
        recovered = recover(tmp_path / "wal")
        assert recovered.seq == len(steps)
        assert recovered.recovery_info.checkpoints_loaded == 0
        assert _fingerprint(recovered.engine) == _fingerprint(_oracle(steps))
        recovered.close()

    def test_failed_dir_fsync_after_publish_poisons_the_engine(self, tmp_path):
        """The rename lands, the directory fsync fails: disk now carries
        a checkpoint the engine's chain state does not — continuing would
        write the next link with a stale prev_seq.  The engine must
        refuse further work; recover() adopts the published link."""
        steps = _stream(seed=11)
        plan = FaultPlan([FaultSpec(site="dir.fsync", at=1, kind="io_error")])
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", checkpoint_interval=0,
            io=FaultyIO(plan),
        )
        for step in steps:
            durable.feed(step)
        with pytest.raises(InjectedIOError):
            durable.checkpoint()
        published = list((tmp_path / "wal" / "checkpoints").iterdir())
        assert len(published) == 1 and ".tmp-" not in published[0].name
        with pytest.raises(DurabilityError, match="storage fault"):
            durable.feed(steps[0])
        durable.simulate_crash()
        recovered = recover(tmp_path / "wal")
        assert recovered.recovery_info.checkpoints_loaded == 1
        assert recovered.last_checkpoint_seq == len(steps)
        assert _fingerprint(recovered.engine) == _fingerprint(_oracle(steps))
        recovered.close()

    def test_recover_start_fault_fires(self, tmp_path):
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal",
        )
        durable.feed(_stream()[0])
        durable.simulate_crash()
        plan = FaultPlan([FaultSpec(site="recover.start", at=1, kind="io_error")])
        with pytest.raises(InjectedIOError):
            recover(tmp_path / "wal", io=FaultyIO(plan))
        # The fault fired before the lock was taken: a retry succeeds.
        recovered = recover(tmp_path / "wal", io=FaultyIO(plan))
        recovered.close()


# ---------------------------------------------------------------------------
# The writer lock
# ---------------------------------------------------------------------------


class TestWalLock:
    def test_second_writer_is_refused_while_owner_lives(self, tmp_path):
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal",
        )
        try:
            with pytest.raises(WalLockedError) as info:
                recover(tmp_path / "wal")
            assert info.value.pid == os.getpid()
        finally:
            durable.close()

    def test_close_releases_the_lock(self, tmp_path):
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal",
        )
        durable.close()
        assert not (tmp_path / "wal" / LOCK_NAME).exists()
        recovered = recover(tmp_path / "wal")
        recovered.close()

    def test_stale_dead_pid_lock_is_reclaimed(self, tmp_path):
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal",
        )
        durable.simulate_crash()
        # Forge the lock a dead process would have left behind (real
        # PIDs are bounded well below this).
        (tmp_path / "wal" / LOCK_NAME).write_text(
            json.dumps({"pid": 2 ** 22 + 12345}) + "\n"
        )
        recovered = recover(tmp_path / "wal")
        assert recovered.recovery_info is not None
        recovered.close()

    def test_torn_lock_file_is_reclaimed(self, tmp_path):
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal",
        )
        durable.simulate_crash()
        (tmp_path / "wal" / LOCK_NAME).write_text('{"pi')  # torn write
        recovered = recover(tmp_path / "wal")
        recovered.close()

    def test_failed_construction_releases_the_lock(self, tmp_path):
        with pytest.raises(DurabilityError):
            DurableEngine(
                scheduler="conflict-graph", policy="eager-c1",
                wal_dir=tmp_path / "wal", checkpoint_interval=-1,
            )
        # Validation failed before the lock was taken; and a fresh open
        # of the same directory must succeed either way.
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal",
        )
        durable.close()

    def test_open_durable_routes_through_the_lock(self, tmp_path):
        first = open_durable(
            tmp_path / "wal", scheduler="conflict-graph", policy="eager-c1"
        )
        try:
            with pytest.raises(WalLockedError):
                open_durable(tmp_path / "wal")
        finally:
            first.close()


# ---------------------------------------------------------------------------
# The torn-write artifact matrix
# ---------------------------------------------------------------------------


def _build_crashed_wal(tmp_path, *, dir_fsync_fails: bool):
    """A wal_dir with one published checkpoint and a logged tail,
    abandoned mid-run (optionally with the checkpoint's directory fsync
    having failed after the rename published it)."""
    steps = _stream(seed=23, n=30)
    plan = FaultPlan(
        [FaultSpec(site="dir.fsync", at=1, kind="io_error")]
        if dir_fsync_fails else []
    )
    durable = DurableEngine(
        scheduler="conflict-graph", policy="eager-c1",
        wal_dir=tmp_path / "wal", checkpoint_interval=16,
        io=FaultyIO(plan),
    )
    fed = []
    for step in steps:
        try:
            durable.feed(step)
        except InjectedIOError:
            # The dir-fsync fault fires *after* the step was appended
            # and applied (the cadence checkpoint runs last in feed) and
            # *after* the rename published the checkpoint — the step
            # counts, but the engine is now poisoned: stop, like the
            # supervisor would.
            fed.append(step)
            break
        fed.append(step)
    durable.simulate_crash()
    checkpoints = [
        p for p in (tmp_path / "wal" / "checkpoints").iterdir()
        if ".tmp-" not in p.name
    ]
    assert checkpoints, "the build run must have published a checkpoint"
    return fed


@pytest.mark.parametrize("dir_fsync_failed", [False, True],
                         ids=["dir-fsync-ok", "dir-fsync-failed"])
@pytest.mark.parametrize("torn_tmp", [False, True],
                         ids=["no-tmp", "torn-tmp"])
@pytest.mark.parametrize("torn_tail", [False, True],
                         ids=["clean-tail", "torn-tail"])
class TestTornWriteMatrix:
    def test_recovers_exactly_or_aborts(
        self, tmp_path, torn_tail, torn_tmp, dir_fsync_failed
    ):
        steps = _build_crashed_wal(tmp_path, dir_fsync_fails=dir_fsync_failed)
        wal = tmp_path / "wal"
        if torn_tail:
            segments = sorted(
                (wal / "segments").iterdir(), key=lambda p: p.name
            )
            with open(segments[-1], "a", encoding="utf-8") as handle:
                handle.write('{"format":1,"seq":99999,"step":{"ki')
        if torn_tmp:
            # A checkpoint write that died mid-stream: mkstemp-named tmp
            # holding a JSON prefix.
            (wal / "checkpoints" / "checkpoint-0000099999.json.tmp-x1")\
                .write_text('{"format":1,"kind":"durability-chec')
        recovered = recover(wal)
        assert recovered.recovery_info.torn_records_dropped == (
            1 if torn_tail else 0
        )
        assert _fingerprint(recovered.engine) == _fingerprint(_oracle(steps))
        recovered.close()
        # Idempotent: the repairs leave a directory that recovers again.
        again = recover(wal)
        assert again.recovery_info.torn_records_dropped == 0
        assert _fingerprint(again.engine) == _fingerprint(_oracle(steps))
        again.close()


class TestBeyondTheCrashEnvelope:
    """Damage one crash cannot produce must abort, never guess."""

    def test_two_torn_tails_abort(self, tmp_path):
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", shards=4, checkpoint_interval=0,
        )
        for step in _stream(seed=3):
            durable.feed(step)
        durable.simulate_crash()
        segments = sorted((tmp_path / "wal" / "segments").iterdir())
        assert len(segments) >= 2
        for segment in segments[:2]:
            with open(segment, "a", encoding="utf-8") as handle:
                handle.write('{"torn')
        with pytest.raises(WalCorruptionError, match="torn segment tails"):
            recover(tmp_path / "wal")

    def test_torn_record_mid_file_aborts(self, tmp_path):
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", checkpoint_interval=0,
        )
        for step in _stream(seed=4):
            durable.feed(step)
        durable.simulate_crash()
        segment = next(
            p for p in (tmp_path / "wal" / "segments").iterdir()
            if p.suffix == ".wal"
        )
        lines = segment.read_text().splitlines()
        lines[len(lines) // 2] = lines[len(lines) // 2][:10]
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="not the segment tail"):
            recover(tmp_path / "wal")

    def test_lost_latest_checkpoint_aborts(self, tmp_path):
        """A published-then-vanished checkpoint (e.g. its rename was
        never made durable and the directory entry was lost with the
        machine) breaks the chain: the WAL prefix it covered is gone."""
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", checkpoint_interval=8,
        )
        for step in _stream(seed=5):
            durable.feed(step)
        durable.simulate_crash()
        checkpoints = sorted((tmp_path / "wal" / "checkpoints").iterdir())
        assert len(checkpoints) >= 2
        checkpoints[-1].unlink()
        with pytest.raises((RecoveryError, WalCorruptionError)):
            recover(tmp_path / "wal")

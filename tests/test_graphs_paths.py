"""Tests for restricted-path queries (tight / FC paths)."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.paths import (
    find_restricted_path,
    has_path,
    has_restricted_path,
    reachable_from,
    reachable_to,
    restricted_predecessors,
    restricted_successors,
)


def _graph() -> DiGraph:
    #   a -> f1 -> b        (f1 admissible)
    #   a -> g  -> c        (g inadmissible)
    #   a -> d              (direct arc)
    return DiGraph(
        [("a", "f1"), ("f1", "b"), ("a", "g"), ("g", "c"), ("a", "d")]
    )


ADMISSIBLE = {"f1", "b", "d"}


def via(node) -> bool:
    return node in ADMISSIBLE


class TestPlainReachability:
    def test_reachable_from(self):
        assert reachable_from(_graph(), "a") == frozenset({"f1", "b", "g", "c", "d"})

    def test_reachable_to(self):
        assert reachable_to(_graph(), "b") == frozenset({"a", "f1"})

    def test_has_path(self):
        graph = _graph()
        assert has_path(graph, "a", "c")
        assert not has_path(graph, "b", "a")
        assert has_path(graph, "a", "a")  # trivially

    def test_missing_node(self):
        with pytest.raises(NodeNotFoundError):
            has_path(_graph(), "a", "zzz")
        with pytest.raises(NodeNotFoundError):
            reachable_from(_graph(), "zzz")


class TestRestrictedPaths:
    def test_direct_arc_always_allowed(self):
        assert has_restricted_path(_graph(), "a", "d", via=lambda n: False)

    def test_path_through_admissible_intermediate(self):
        assert has_restricted_path(_graph(), "a", "b", via=via)

    def test_path_blocked_by_inadmissible_intermediate(self):
        assert not has_restricted_path(_graph(), "a", "c", via=via)

    def test_endpoints_exempt_from_predicate(self):
        # 'a' and 'c' both inadmissible, but 'c' is reached via 'g' only.
        graph = DiGraph([("a", "f1"), ("f1", "c")])
        assert has_restricted_path(graph, "a", "c", via=lambda n: n == "f1")

    def test_no_empty_path(self):
        # source == target needs a genuine cycle, absent in a DAG.
        assert not has_restricted_path(_graph(), "a", "a", via=via)

    def test_find_restricted_path_returns_witness(self):
        path = find_restricted_path(_graph(), "a", "b", via=via)
        assert path == ["a", "f1", "b"]

    def test_find_restricted_path_none(self):
        assert find_restricted_path(_graph(), "a", "c", via=via) is None

    def test_find_direct(self):
        assert find_restricted_path(_graph(), "a", "d", via=lambda n: False) == [
            "a",
            "d",
        ]


class TestRestrictedNeighborhoods:
    def test_restricted_successors(self):
        # From a: f1 (direct), b (via f1), g (direct), d (direct);
        # c unreachable because g is inadmissible.
        assert restricted_successors(_graph(), "a", via=via) == frozenset(
            {"f1", "b", "g", "d"}
        )

    def test_restricted_predecessors(self):
        assert restricted_predecessors(_graph(), "b", via=via) == frozenset(
            {"f1", "a"}
        )

    def test_restricted_predecessors_blocked(self):
        assert restricted_predecessors(_graph(), "c", via=via) == frozenset({"g"})

    def test_frontier_nodes_included_but_not_expanded(self):
        # d -> e with d inadmissible: e's predecessors stop at d.
        graph = DiGraph([("a", "d"), ("d", "e")])
        preds = restricted_predecessors(graph, "e", via=lambda n: False)
        assert preds == frozenset({"d"})

    def test_long_chain_of_admissible(self):
        graph = DiGraph([(i, i + 1) for i in range(6)])
        succ = restricted_successors(graph, 0, via=lambda n: True)
        assert succ == frozenset(range(1, 7))

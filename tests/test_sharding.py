"""Unit tests for the sharding layer: union-find routing, kernel
extract/install, group migration, the sharded engine's routing behaviors,
and the format-versioned sharded snapshots.

The cross-cutting guarantee — a ShardedEngine decides, aborts, and deletes
identically to a monolithic Engine — lives in
``tests/test_sharding_equivalence.py``; this file pins the mechanisms.
"""

from __future__ import annotations

import pytest

from repro.core.dirty import DirtyTracker
from repro.core.reduced_graph import ReducedGraph
from repro.engine import Engine, EngineConfig, ShardedEngine, build_engine
from repro.errors import (
    EngineError,
    GraphError,
    SnapshotError,
    TransactionStateError,
)
from repro.graphs.bitclosure import BitClosureGraph
from repro.io import (
    engine_snapshot_from_json,
    engine_snapshot_to_json,
    restore_engine,
)
from repro.model.status import AccessMode, TxnState
from repro.model.steps import Begin, BeginDeclared, Read, Write
from repro.scheduler.events import Decision
from repro.sharding import FootprintRouter, UnionFind, footprint_of
from repro.tracking import CurrencyTracker
from repro.workloads.banking import BankingConfig, banking_specs
from repro.workloads.generator import (
    WorkloadConfig,
    basic_specs,
    basic_stream,
)


# ---------------------------------------------------------------------------
# Union-find and router
# ---------------------------------------------------------------------------


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        for key in ("a", "b", "c", "d"):
            assert uf.add(("t", key))
        root, absorbed = uf.union(("t", "a"), ("t", "b"))
        assert absorbed is not None
        assert uf.find(("t", "a")) == uf.find(("t", "b")) == root
        same_root, absorbed2 = uf.union(("t", "a"), ("t", "b"))
        assert absorbed2 is None and same_root == root
        assert uf.find(("t", "c")) != root

    def test_add_is_idempotent(self):
        uf = UnionFind()
        assert uf.add(("e", "x"))
        assert not uf.add(("e", "x"))
        assert len(uf) == 1


class TestFootprintRouter:
    def test_new_groups_go_to_least_loaded_shard(self):
        router = FootprintRouter(3)
        shard_a, migs = router.assign("T1", {"x"})
        assert shard_a == 0 and not migs
        shard_b, _ = router.assign("T2", {"y"})
        shard_c, _ = router.assign("T3", {"z"})
        assert {shard_a, shard_b, shard_c} == {0, 1, 2}

    def test_same_entity_routes_to_same_shard(self):
        router = FootprintRouter(4)
        shard_a, _ = router.assign("T1", {"x"})
        shard_b, migs = router.assign("T2", {"x", "w"})
        assert shard_b == shard_a and not migs

    def test_cross_shard_merge_migrates_smaller_group(self):
        router = FootprintRouter(2)
        big, small = None, None
        for txn in ("A1", "A2", "A3"):
            big, _ = router.assign(txn, {"x"})
        small, _ = router.assign("B1", {"y"})
        assert big != small
        shard, migrations = router.assign("B2", {"y", "x"})
        assert shard == big
        [migration] = migrations
        assert migration.source == small and migration.target == big
        assert migration.txns == ("B1",)
        assert "y" in migration.entities
        assert router.migrations == 1 and router.merges == 1
        assert router.shard_of_entity("y") == big
        assert router.shard_of_txn("B1") == big

    def test_removed_txns_leave_live_counts(self):
        router = FootprintRouter(2)
        router.assign("T1", {"x"})
        router.assign("T2", {"y"})
        assert router.live_counts() == (1, 1)
        router.on_txn_removed("T1")
        assert router.live_counts() == (0, 1)
        # Unknown ids are a no-op (pending begins never materialized).
        router.on_txn_removed("nope")

    def test_state_dict_round_trip_is_exact(self):
        router = FootprintRouter(3)
        router.assign("T1", {"x", "y"})
        router.assign("T2", {"z"})
        router.assign("T3", {"z", "x"})  # forces a merge
        router.on_txn_removed("T1")
        state = router.state_dict()
        clone = FootprintRouter.from_state(state)
        assert clone.state_dict() == state
        assert clone.shard_of_txn("T3") == router.shard_of_txn("T3")
        assert clone.live_counts() == router.live_counts()

    def test_bad_shard_count_rejected(self):
        with pytest.raises(EngineError):
            FootprintRouter(0)


def test_footprint_of_includes_declared_entities():
    step = BeginDeclared("T1", {"x": AccessMode.READ, "y": AccessMode.WRITE})
    assert footprint_of(step) == frozenset({"x", "y"})
    assert footprint_of(Begin("T1")) == frozenset()
    assert footprint_of(Write("T1", {"a", "b"})) == frozenset({"a", "b"})


# ---------------------------------------------------------------------------
# Kernel extract/install (snapshot/patch migration primitive)
# ---------------------------------------------------------------------------


def _group_kernel():
    kernel = BitClosureGraph()
    for node in ("a", "b", "c", "x", "y"):
        kernel.add_node(node)
    kernel.add_arc("a", "b")
    kernel.add_arc("b", "c")
    kernel.add_arc("x", "y")
    return kernel


class TestKernelExtractInstall:
    def test_round_trip_between_kernels(self):
        source = _group_kernel()
        target = BitClosureGraph()
        for node in ("m", "n"):  # pre-existing unrelated content
            target.add_node(node)
        target.add_arc("m", "n")
        payload = source.extract_nodes(["a", "b", "c"])
        assert sorted(source.nodes()) == ["x", "y"]
        target.install_nodes(payload)
        assert target.reaches("a", "c") and target.reaches("a", "b")
        assert target.has_arc("b", "c") and not target.has_arc("a", "c")
        assert target.reaches("m", "n")
        source.check_invariants()
        target.check_invariants()

    def test_boundary_violation_raises(self):
        kernel = _group_kernel()
        kernel.add_arc("c", "x")  # now {a,b,c} is not closed
        with pytest.raises(GraphError, match="cross the group boundary"):
            kernel.extract_nodes(["a", "b", "c"])

    def test_duplicate_nodes_rejected(self):
        kernel = _group_kernel()
        with pytest.raises(GraphError, match="duplicate"):
            kernel.extract_nodes(["a", "a"])

    def test_install_refuses_present_nodes(self):
        source = _group_kernel()
        payload = source.extract_nodes(["x", "y"])
        target = BitClosureGraph()
        target.add_node("x")
        with pytest.raises(GraphError, match="already present"):
            target.install_nodes(payload)


class TestReducedGraphExtractInstall:
    def _graph(self):
        graph = ReducedGraph()
        for txn in ("A", "B", "C"):
            graph.add_transaction(txn)
        graph.record_access("A", "x", AccessMode.WRITE)
        graph.record_access("B", "x", AccessMode.READ)
        graph.record_access("C", "z", AccessMode.WRITE)
        graph.add_arc("A", "B")
        graph.set_state("A", TxnState.COMMITTED)
        return graph

    def test_extract_install_rebuilds_every_index(self):
        source = self._graph()
        target = ReducedGraph()
        payload = source.extract_subgraph({"A", "B"})
        assert sorted(source.nodes()) == ["C"]
        assert not source.accessors_of("x")
        source.check_invariants()
        target.install_subgraph(payload)
        assert target.has_arc("A", "B")
        assert target.writers_of("x") == frozenset({"A"})
        assert target.state("A") is TxnState.COMMITTED
        assert target.active_transactions() == frozenset({"B"})
        target.check_invariants()

    def test_absent_txns_are_skipped(self):
        source = self._graph()
        payload = source.extract_subgraph({"C", "never-seen"})
        assert [info.txn for info in payload["infos"]] == ["C"]

    def test_install_guards_id_reuse(self):
        source = self._graph()
        payload = source.extract_subgraph({"C"})
        target = ReducedGraph()
        target.add_transaction("C", TxnState.COMMITTED)
        target.delete("C")
        with pytest.raises(TransactionStateError):
            target.install_subgraph(payload)


def test_currency_extract_absorb():
    tracker = CurrencyTracker()
    tracker.on_write("T1", "x")
    tracker.on_read("T2", "x")
    tracker.on_write("T3", "y")
    part = tracker.extract({"x"})
    assert tracker.current_transactions() == frozenset({"T3"})
    other = CurrencyTracker()
    other.absorb(part)
    assert other.current_transactions() == frozenset({"T1", "T2"})


# ---------------------------------------------------------------------------
# ShardedEngine behaviors
# ---------------------------------------------------------------------------


class TestShardedEngine:
    def test_begin_is_deferred_until_first_footprint_step(self):
        engine = ShardedEngine(
            scheduler="conflict-graph", policy="never", shards=2
        )
        result = engine.feed(Begin("T1"))
        assert result.decision is Decision.ACCEPTED
        assert engine.pending_begins == ("T1",)
        assert engine.live_transactions() == frozenset()
        engine.feed(Read("T1", "x"))
        assert engine.pending_begins == ()
        assert engine.live_transactions() == frozenset({"T1"})
        assert engine.shard_of("T1") is not None

    def test_flush_pending_materializes_idle_begins(self):
        engine = ShardedEngine(
            scheduler="conflict-graph", policy="never", shards=2
        )
        engine.feed(Begin("T1"))
        engine.feed(Begin("T2"))
        assert engine.flush_pending() == 2
        assert engine.live_transactions() == {"T1", "T2"}
        # Growth performed by the flush itself is observed by the merged
        # peaks (they are maintained per shard feed, not per routed step).
        assert engine.stats.peak_graph_size == 2

    def test_steps_of_aborted_transactions_are_ignored_at_the_router(self):
        engine = ShardedEngine(
            scheduler="conflict-graph", policy="never", shards=2
        )
        for step in (
            Begin("T1"), Read("T1", "x"),
            Begin("T2"), Read("T2", "x"),
            Write("T2", {"x"}),
        ):
            engine.feed(step)
        rejected = engine.feed(Write("T1", {"x"}))  # cycle: T1 aborts
        assert rejected.aborted == ("T1",)
        late = engine.feed(Read("T1", "y"))
        assert late.decision is Decision.IGNORED
        assert engine.stats.steps_fed == 7

    def test_merged_stats_and_report(self):
        config = WorkloadConfig(
            n_transactions=40, n_entities=12, multiprogramming=5,
            write_fraction=0.5, max_accesses=3, seed=3,
            partitions=4, cross_fraction=0.1,
        )
        engine = ShardedEngine(
            scheduler="conflict-graph", policy="eager-c1", shards=4
        )
        batch = engine.feed_batch(basic_stream(config), flush=True)
        stats = engine.stats
        assert stats.steps_fed == batch.steps_fed
        assert stats.deletions == len(stats.deleted_ids) > 0
        assert stats.policy_invocations == sum(
            shard.stats.policy_invocations for shard in engine.shards
        )
        report = engine.shard_report()
        assert len(report) == 4
        assert sum(row["steps_fed"] for row in report) <= stats.steps_fed
        assert stats.peak_graph_size >= max(
            row["peak_graph"] for row in report
        )

    def test_deleted_id_reuse_rejected_after_migration(self):
        """The router enforces id-reuse tombstones even when the group
        has migrated away from the shard that deleted the transaction."""
        engine = ShardedEngine(
            scheduler="conflict-graph", policy="eager-c1", shards=2
        )
        # T1 lives on entity x's shard, commits, and is deleted.
        engine.feed(Begin("T1"))
        engine.feed(Write("T1", {"x"}))
        assert "T1" in engine.stats.deleted_ids
        # Grow a bigger group on entity y, then bridge x into it so x's
        # group migrates away from T1's original shard.
        for txn in ("B1", "B2", "B3"):
            engine.feed(Begin(txn))
            engine.feed(Read(txn, "y"))
        engine.feed(Begin("M"))
        engine.feed(Read("M", "y"))
        engine.feed(Read("M", "x"))
        with pytest.raises(TransactionStateError, match="already used"):
            engine.feed(Begin("T1"))

    def test_shard_count_validation(self):
        with pytest.raises(EngineError):
            ShardedEngine(scheduler="conflict-graph", policy="never", shards=0)

    def test_build_engine_dispatch(self):
        assert isinstance(
            build_engine(EngineConfig(scheduler="conflict-graph")), Engine
        )
        assert isinstance(
            build_engine(EngineConfig(scheduler="conflict-graph"), shards=3),
            ShardedEngine,
        )

    def test_sweep_unions_shard_selections(self):
        engine = ShardedEngine(
            scheduler="conflict-graph", policy="never", shards=2,
        )
        for step in (
            Begin("T1"), Write("T1", {"x"}),
            Begin("T2"), Write("T2", {"y"}),
        ):
            engine.feed(step)
        # Swap in an eager policy per shard and sweep explicitly.
        for shard in engine.shards:
            from repro.core.policies import EagerC1Policy

            shard.policy = EagerC1Policy()
        selected = engine.sweep()
        assert selected == frozenset({"T1", "T2"})


class TestShardedSnapshots:
    def _run_half(self):
        config = WorkloadConfig(
            n_transactions=60, n_entities=16, multiprogramming=5,
            write_fraction=0.5, max_accesses=3, zipf_s=0.4, seed=9,
            partitions=4, cross_fraction=0.2,
        )
        stream = list(basic_stream(config))
        engine = ShardedEngine(
            scheduler="conflict-graph", policy="eager-c1", shards=4
        )
        half = len(stream) // 2
        for step in stream[:half]:
            engine.feed(step)
        return engine, stream[half:]

    def test_round_trip_is_bit_exact(self):
        engine, _rest = self._run_half()
        text = engine_snapshot_to_json(engine.snapshot())
        restored = restore_engine(engine_snapshot_from_json(text))
        assert isinstance(restored, ShardedEngine)
        assert engine_snapshot_to_json(restored.snapshot()) == text

    def test_restored_engine_continues_identically(self):
        engine, rest = self._run_half()
        restored = ShardedEngine.restore(engine.snapshot())
        for step in rest:
            assert engine.feed(step) == restored.feed(step)
        engine.flush_pending()
        restored.flush_pending()
        assert engine_snapshot_to_json(
            engine.snapshot()
        ) == engine_snapshot_to_json(restored.snapshot())

    def test_router_state_survives_restore(self):
        engine, _rest = self._run_half()
        restored = ShardedEngine.restore(engine.snapshot())
        assert restored.router.state_dict() == engine.router.state_dict()
        for txn in list(engine.live_transactions())[:5]:
            assert restored.shard_of(txn) == engine.shard_of(txn)

    def test_bad_payloads_rejected(self):
        with pytest.raises(SnapshotError):
            ShardedEngine.restore({"format": 99, "kind": "sharded-engine"})
        with pytest.raises(SnapshotError):
            ShardedEngine.restore([1, 2, 3])
        engine, _ = self._run_half()
        mono = Engine(scheduler="conflict-graph", policy="never")
        # restore_engine dispatches monolithic payloads to Engine.
        assert isinstance(restore_engine(mono.snapshot()), Engine)


# ---------------------------------------------------------------------------
# Partition-skew workload knobs
# ---------------------------------------------------------------------------


class TestPartitionKnobs:
    def test_partitions_one_is_byte_identical_to_legacy(self):
        legacy = WorkloadConfig(n_transactions=30, n_entities=10, seed=4)
        knobbed = WorkloadConfig(
            n_transactions=30, n_entities=10, seed=4,
            partitions=1, cross_fraction=0.5,  # ignored at partitions=1
        )
        assert basic_specs(legacy) == basic_specs(knobbed)
        bank_legacy = BankingConfig(seed=4)
        bank_knobbed = BankingConfig(seed=4, partitions=1, cross_fraction=0.5)
        assert banking_specs(bank_legacy) == banking_specs(bank_knobbed)

    def test_disjoint_partitions_never_share_entities(self):
        config = WorkloadConfig(
            n_transactions=40, n_entities=16, seed=2,
            partitions=4, cross_fraction=0.0, max_accesses=3,
        )
        for spec in basic_specs(config):
            prefixes = {
                entity.split("e")[0]
                for entity in set(spec.reads) | set(spec.writes)
            }
            assert len(prefixes) == 1

    def test_cross_fraction_produces_cross_partition_txns(self):
        config = WorkloadConfig(
            n_transactions=200, n_entities=16, seed=2,
            partitions=4, cross_fraction=0.5, max_accesses=3,
        )
        crossers = 0
        for spec in basic_specs(config):
            prefixes = {
                entity.split("e")[0]
                for entity in set(spec.reads) | set(spec.writes)
            }
            if len(prefixes) > 1:
                crossers += 1
        assert crossers > 20

    def test_banking_cross_fraction(self):
        config = BankingConfig(
            n_accounts=16, n_transfers=200, seed=2, audit_every=0,
            audit_span=2, partitions=4, cross_fraction=0.4,
            deposit_fraction=0.0,
        )
        per = config.accounts_per_partition
        crossers = 0
        for index, spec in enumerate(banking_specs(config)):
            branches = {
                int(entity[4:]) // per
                for entity in set(spec.reads) | set(spec.writes)
            }
            if len(branches) > 1:
                crossers += 1
        assert crossers > 20

    def test_partition_validation(self):
        with pytest.raises(Exception):
            WorkloadConfig(n_entities=8, partitions=4, max_accesses=3)
        with pytest.raises(Exception):
            BankingConfig(n_accounts=4, partitions=4)


# ---------------------------------------------------------------------------
# Abort-impact dirty regions (satellite)
# ---------------------------------------------------------------------------


class TestAbortImpactRegions:
    def test_graph_accumulates_region_when_enabled(self):
        graph = ReducedGraph()
        for txn in ("P", "C1", "C2"):
            graph.add_transaction(txn)
        graph.record_access("P", "x", AccessMode.READ)
        graph.add_arc("P", "C1")
        graph.add_arc("C1", "C2")
        graph.set_state("C1", TxnState.COMMITTED)
        graph.set_state("C2", TxnState.COMMITTED)
        graph.enable_abort_impact()
        graph.abort("P")
        region = graph.consume_abort_impact()
        assert region == {"C1", "C2"}
        assert graph.consume_abort_impact() == set()

    def test_disabled_graph_reports_none(self):
        graph = ReducedGraph()
        graph.add_transaction("T")
        graph.abort("T")
        assert graph.consume_abort_impact() is None

    def test_tracker_stays_bounded_on_aborts(self):
        """An abort no longer resets the tracker to all-dirty."""
        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        for step in (
            Begin("T1"), Read("T1", "x"),
            Begin("T2"), Read("T2", "x"), Write("T2", {"x"}),
        ):
            engine.feed(step)
        assert engine._dirty_tracker is not None
        rejected = engine.feed(Write("T1", {"x"}))
        assert rejected.aborted == ("T1",)
        tracker = engine._dirty_tracker
        assert tracker.snapshot() is not None, (
            "abort must dirty a region, not everything"
        )

    def test_tracker_without_accumulator_falls_back_to_all_dirty(self):
        tracker = DirtyTracker("completions")
        tracker.clear()  # leave the conservative initial state

        class Result:
            aborted = ("T9",)
            committed = ()
            released = ()
            step = Begin("T9")

        class BareGraph:
            pass

        tracker.observe(BareGraph(), Result())
        assert tracker.snapshot() is None

"""Unit tests for transaction specifications."""

from __future__ import annotations

import pytest

from repro.errors import InvalidStepError
from repro.model.status import AccessMode
from repro.model.steps import Begin, Finish, Read, Write, WriteItem
from repro.model.transactions import (
    MultiwriteTransactionSpec,
    PredeclaredTransactionSpec,
    TransactionSpec,
    basic_spec_from_steps,
)


class TestTransactionSpec:
    def test_steps_shape(self):
        spec = TransactionSpec("T1", ("x", "y"), frozenset({"z"}))
        steps = spec.steps()
        assert steps[0] == Begin("T1")
        assert steps[1:-1] == (Read("T1", "x"), Read("T1", "y"))
        assert steps[-1] == Write("T1", frozenset({"z"}))

    def test_read_only_transaction(self):
        spec = TransactionSpec("T1", ("x",), frozenset())
        assert spec.steps()[-1] == Write("T1", frozenset())

    def test_access_mode(self):
        spec = TransactionSpec("T1", ("x",), frozenset({"x", "y"}))
        assert spec.access_mode("x") is AccessMode.WRITE  # write dominates
        assert spec.access_mode("y") is AccessMode.WRITE
        assert spec.access_mode("z") is None

    def test_accessed_union(self):
        spec = TransactionSpec("T1", ("a",), frozenset({"b"}))
        assert spec.accessed == frozenset({"a", "b"})

    def test_len(self):
        spec = TransactionSpec("T1", ("a", "b"), frozenset({"c"}))
        assert len(spec) == 4


class TestMultiwriteSpec:
    def test_steps_shape(self):
        spec = MultiwriteTransactionSpec(
            "T1",
            ((AccessMode.READ, "x"), (AccessMode.WRITE, "y"), (AccessMode.READ, "x")),
        )
        steps = spec.steps()
        assert steps[0] == Begin("T1")
        assert steps[1] == Read("T1", "x")
        assert steps[2] == WriteItem("T1", "y")
        assert steps[-1] == Finish("T1")

    def test_repeated_entity_allowed(self):
        spec = MultiwriteTransactionSpec(
            "T1", ((AccessMode.READ, "x"), (AccessMode.WRITE, "x"))
        )
        assert spec.access_mode("x") is AccessMode.WRITE

    def test_invalid_mode_rejected(self):
        with pytest.raises(InvalidStepError):
            MultiwriteTransactionSpec("T1", (("write", "x"),))


class TestPredeclaredSpec:
    def test_declaration_derived(self):
        spec = PredeclaredTransactionSpec(
            "T1", ((AccessMode.READ, "u"), (AccessMode.WRITE, "v"))
        )
        assert spec.declared == {"u": AccessMode.READ, "v": AccessMode.WRITE}

    def test_duplicate_entity_rejected(self):
        with pytest.raises(InvalidStepError):
            PredeclaredTransactionSpec(
                "T1", ((AccessMode.READ, "x"), (AccessMode.WRITE, "x"))
            )

    def test_steps_carry_declaration(self):
        spec = PredeclaredTransactionSpec("T1", ((AccessMode.WRITE, "x"),))
        begin = spec.steps()[0]
        assert begin.declared == {"x": AccessMode.WRITE}
        assert spec.steps()[-1] == Finish("T1")

    def test_body_iterates_executable_steps(self):
        spec = PredeclaredTransactionSpec(
            "T1", ((AccessMode.READ, "a"), (AccessMode.WRITE, "b"))
        )
        assert list(spec.body()) == [Read("T1", "a"), WriteItem("T1", "b")]


class TestBasicSpecFromSteps:
    def test_round_trip(self):
        spec = TransactionSpec("T1", ("x",), frozenset({"y"}))
        assert basic_spec_from_steps(spec.steps()) == spec

    def test_missing_begin(self):
        with pytest.raises(InvalidStepError):
            basic_spec_from_steps([Read("T1", "x")])

    def test_step_after_final_write(self):
        with pytest.raises(InvalidStepError):
            basic_spec_from_steps(
                [Begin("T1"), Write("T1", frozenset()), Read("T1", "x")]
            )

    def test_foreign_step_rejected(self):
        with pytest.raises(InvalidStepError):
            basic_spec_from_steps([Begin("T1"), Read("T2", "x")])

    def test_missing_final_write(self):
        with pytest.raises(InvalidStepError):
            basic_spec_from_steps([Begin("T1"), Read("T1", "x")])

    def test_multiwrite_step_rejected(self):
        with pytest.raises(InvalidStepError):
            basic_spec_from_steps([Begin("T1"), WriteItem("T1", "x")])

"""Served-vs-standalone lockstep equivalence (the serving soundness gate).

The serving layer must be a *transport*, not a semantics layer: a step
stream fed to a tenant over the wire must produce exactly the results the
same stream produces when fed to a standalone engine in-process.  This
module drives one server hosting several tenants — different schedulers,
policies, and shard counts — with **interleaved** feeds (round-robin
across tenants, so per-tenant queue serialization is actually exercised)
plus audit reads between writes, and asserts

* identical per-step :class:`StepResult`s, round-tripped through the wire
  codecs (same style as ``test_sharding_equivalence.py``),
* identical audit records at interleaved read points,
* identical accepted subschedules, live/deleted/aborted sets, and stats,
* **byte-identical** engine snapshots (the served engine serialized via
  ``engine_snapshot_to_json`` equals the standalone engine's bytes).

CI refuses to pass if this module is skipped (same guard as the kernel
and sharding equivalence suites).

No pytest-asyncio in the image: each test spins its own loop via
``asyncio.run`` inside a plain test function.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.client import AsyncServingClient
from repro.engine import build_engine
from repro.io import engine_snapshot_to_json, schedule_to_list
from repro.server import ReproServer
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

#: (tenant name, engine kwargs, stream factory) — one tenant per scheduler
#: family, plus a sharded tenant so the sharded write path serves too.
TENANTS = [
    ("conflict", dict(scheduler="conflict-graph", policy="eager-c1"),
     basic_stream),
    ("certifier", dict(scheduler="certifier", policy="noncurrent"),
     basic_stream),
    ("locking", dict(scheduler="strict-2pl", policy="lemma1"), basic_stream),
    ("multiwrite", dict(scheduler="multiwrite", policy="eager-c3"),
     multiwrite_stream),
    ("predeclared", dict(scheduler="predeclared", policy="eager-c4"),
     predeclared_stream),
    ("sharded", dict(scheduler="conflict-graph", policy="eager-c1", shards=2),
     basic_stream),
]

#: Audit this often while writing, so reads interleave with feeds.
_AUDIT_EVERY = 7


def _workload(seed: int) -> WorkloadConfig:
    return WorkloadConfig(
        n_transactions=30,
        n_entities=12,
        multiprogramming=4,
        write_fraction=0.5,
        max_accesses=3,
        seed=seed,
        partitions=2,
        cross_fraction=0.2,
    )


async def _drive(seed: int) -> None:
    server = ReproServer(max_queue_depth=4096, yield_every=16)
    host, port = await server.start()
    standalones = {}
    streams = {}
    try:
        async with await AsyncServingClient.connect(host, port) as client:
            for name, kwargs, streamer in TENANTS:
                await client.create_tenant(name, **kwargs)
                standalones[name] = build_engine(**kwargs)
                streams[name] = list(streamer(_workload(seed)))

            # Round-robin interleave: tenant A's step i, tenant B's step i,
            # ... so the per-tenant queues serve concurrently-arriving
            # traffic, with audit reads every few writes.
            longest = max(len(s) for s in streams.values())
            for index in range(longest):
                for name, _kwargs, _streamer in TENANTS:
                    stream = streams[name]
                    if index >= len(stream):
                        continue
                    step = stream[index]
                    expected = standalones[name].feed(step)
                    actual = await client.feed(name, step)
                    assert actual == expected, (
                        f"{name} diverged at step {index} ({step}): "
                        f"{actual} != {expected}"
                    )
                    if index % _AUDIT_EVERY == 0:
                        txn = step.txn
                        served = await client.audit(name, txn)
                        local = standalones[name].audit(txn).as_dict()
                        assert served == local, (
                            f"{name} audit({txn!r}) diverged: "
                            f"{served} != {local}"
                        )

            for name, kwargs, _streamer in TENANTS:
                engine = standalones[name]
                if kwargs.get("shards", 1) > 1:
                    await client.flush_pending(name)
                    engine.flush_pending()
                assert await client.query(name, "accepted") == (
                    schedule_to_list(engine.accepted_subschedule())
                )
                assert await client.query(name, "live") == sorted(
                    engine.live_transactions()
                )
                assert await client.query(name, "deleted") == sorted(
                    engine.deleted_transactions()
                )
                assert await client.query(name, "aborted") == sorted(
                    engine.aborted
                )
                served_stats = await client.query(name, "stats")
                assert served_stats["steps_fed"] == engine.stats.steps_fed
                assert served_stats["deleted_ids"] == list(
                    engine.stats.deleted_ids
                )
                # The strong claim: the served engine *is* the standalone
                # engine — snapshots byte-identical.
                served_engine = server._tenants[name].engine
                assert engine_snapshot_to_json(served_engine.snapshot()) == (
                    engine_snapshot_to_json(engine.snapshot())
                ), f"{name}: served snapshot differs from standalone"
    finally:
        await server.close()


class TestServedLockstep:
    @pytest.mark.parametrize("seed", [3, 17, 42])
    def test_interleaved_multitenant_lockstep(self, seed):
        asyncio.run(_drive(seed))


class TestBatchedLockstep:
    """feed_batch over the wire equals in-process feed_batch."""

    def test_feed_batch_summary_and_results(self):
        async def _run() -> None:
            server = ReproServer()
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(host, port) as c:
                    await c.create_tenant(
                        "t", scheduler="conflict-graph", policy="noncurrent"
                    )
                    engine = build_engine(
                        scheduler="conflict-graph", policy="noncurrent"
                    )
                    steps = list(basic_stream(_workload(seed=9)))
                    expected = engine.feed_batch(steps)
                    summary = await c.feed_batch("t", steps, results=True)
                    assert summary["count"] == expected.steps_fed
                    assert summary["accepted"] == expected.accepted
                    assert summary["rejected"] == expected.rejected
                    assert summary["delayed"] == expected.delayed
                    assert summary["ignored"] == expected.ignored
                    assert tuple(summary["results"]) == expected.results
            finally:
                await server.close()

        asyncio.run(_run())

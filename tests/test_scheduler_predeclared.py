"""Unit tests for the predeclared scheduler (Rules 1'-3', delays)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidStepError, SchedulerError
from repro.model.status import AccessMode as M
from repro.model.status import TxnState
from repro.model.steps import Begin, BeginDeclared, Finish, Read, WriteItem
from repro.scheduler.events import Decision
from repro.scheduler.predeclared import PredeclaredScheduler


def run(steps):
    scheduler = PredeclaredScheduler()
    results = scheduler.feed_many(steps)
    return scheduler, results


class TestRule1Prime:
    def test_begin_collects_arcs_from_executed_conflicts(self):
        scheduler, results = run(
            [
                BeginDeclared("A", {"x": M.WRITE}),
                WriteItem("A", "x"),
                BeginDeclared("B", {"x": M.READ}),
            ]
        )
        assert results[-1].arcs_added == (("A", "B"),)

    def test_begin_ignores_nonconflicting_history(self):
        scheduler, results = run(
            [
                BeginDeclared("A", {"x": M.READ}),
                Read("A", "x"),
                BeginDeclared("B", {"x": M.READ}),  # read-read: no arc
            ]
        )
        assert results[-1].arcs_added == ()

    def test_plain_begin_rejected(self):
        scheduler = PredeclaredScheduler()
        with pytest.raises(InvalidStepError):
            scheduler.feed(Begin("A"))


class TestRules23Prime:
    def test_arc_to_future_conflictor(self):
        scheduler, results = run(
            [
                BeginDeclared("A", {"x": M.READ}),
                BeginDeclared("B", {"x": M.WRITE}),
                Read("A", "x"),
            ]
        )
        assert results[-1].arcs_added == (("A", "B"),)

    def test_no_arc_for_future_read_read(self):
        scheduler, results = run(
            [
                BeginDeclared("A", {"x": M.READ}),
                BeginDeclared("B", {"x": M.READ}),
                Read("A", "x"),
            ]
        )
        assert results[-1].arcs_added == ()

    def test_undeclared_access_rejected(self):
        scheduler, _ = run([BeginDeclared("A", {"x": M.READ})])
        with pytest.raises(InvalidStepError):
            scheduler.feed(Read("A", "y"))

    def test_wrong_mode_rejected(self):
        scheduler, _ = run([BeginDeclared("A", {"x": M.WRITE})])
        with pytest.raises(InvalidStepError):
            scheduler.feed(Read("A", "x"))

    def test_repeated_access_rejected(self):
        scheduler, _ = run([BeginDeclared("A", {"x": M.READ}), Read("A", "x")])
        with pytest.raises(InvalidStepError):
            scheduler.feed(Read("A", "x"))


class TestDelays:
    def _delay_setup(self):
        """A reads x (arc A->B since B will write x); then B's write of y
        would need arc B->A (A will read y) closing a cycle: delayed."""
        return [
            BeginDeclared("A", {"x": M.READ, "y": M.READ}),
            BeginDeclared("B", {"x": M.WRITE, "y": M.WRITE}),
            Read("A", "x"),  # arc A -> B
            WriteItem("B", "y"),  # needs B -> A: cycle -> delay
        ]

    def test_cycle_causing_step_delayed(self):
        scheduler, results = run(self._delay_setup())
        assert results[-1].decision is Decision.DELAYED
        assert results[-1].blocked_on == ("A",)
        assert "B" in scheduler.waiting_transactions()

    def test_delayed_step_released_when_blocker_executes(self):
        steps = self._delay_setup() + [Read("A", "y")]
        scheduler, results = run(steps)
        released = results[-1].released
        assert [str(s) for s in released] == ["wy(B)"]
        assert not scheduler.waiting_transactions()

    def test_program_order_behind_delayed_step(self):
        steps = self._delay_setup() + [WriteItem("B", "x")]
        scheduler, results = run(steps)
        assert results[-1].decision is Decision.DELAYED
        assert len(scheduler.waiting_transactions()["B"]) == 2

    def test_whole_queue_drains_in_order(self):
        steps = self._delay_setup() + [WriteItem("B", "x"), Read("A", "y")]
        scheduler, results = run(steps)
        assert [str(s) for s in results[-1].released] == ["wy(B)", "wx(B)"]

    def test_executed_schedule_reflects_execution_order(self):
        steps = self._delay_setup() + [Read("A", "y")]
        scheduler, _ = run(steps)
        executed = [str(s) for s in scheduler.executed_schedule()]
        assert executed == ["rx(A)", "ry(A)", "wy(B)"]

    def test_no_rejections_ever(self):
        steps = self._delay_setup() + [
            Read("A", "y"),
            WriteItem("B", "x"),
            Finish("A"),
            Finish("B"),
        ]
        _, results = run(steps)
        assert all(r.decision is not Decision.REJECTED for r in results)


class TestCompletion:
    def test_finish_commits(self):
        scheduler, results = run(
            [BeginDeclared("A", {"x": M.READ}), Read("A", "x"), Finish("A")]
        )
        assert scheduler.graph.state("A") is TxnState.COMMITTED
        assert results[-1].committed == ("A",)

    def test_finish_with_remaining_future_rejected(self):
        scheduler, _ = run([BeginDeclared("A", {"x": M.READ})])
        with pytest.raises(InvalidStepError):
            scheduler.feed(Finish("A"))

    def test_future_consumed_as_steps_execute(self):
        scheduler, _ = run(
            [BeginDeclared("A", {"x": M.READ, "y": M.WRITE}), Read("A", "x")]
        )
        assert scheduler.graph.info("A").future == {"y": M.WRITE}


class TestConflictPairInvariant:
    def test_every_executed_conflict_pair_has_an_arc(self):
        """The §5 invariant: arcs appear at the first of two conflicting
        steps (or at the later transaction's begin)."""
        steps = [
            BeginDeclared("A", {"x": M.WRITE, "z": M.READ}),
            WriteItem("A", "x"),
            BeginDeclared("B", {"x": M.READ, "y": M.WRITE}),
            Read("B", "x"),
            BeginDeclared("C", {"y": M.READ, "z": M.WRITE}),
            Read("C", "y"),
            WriteItem("B", "y"),
            Read("A", "z"),
            WriteItem("C", "z"),
            Finish("A"),
            Finish("B"),
            Finish("C"),
        ]
        scheduler, results = run(steps)
        graph = scheduler.graph
        # Executed conflicts: A-w x before B-r x => A->B; C-r y before
        # B-w y => C->B; A-r z before C-w z => A->C.
        assert graph.has_arc("A", "B")
        assert graph.has_arc("C", "B")
        assert graph.has_arc("A", "C")

"""Durability units: atomic writes, WAL codec, checkpoints, recovery.

The crash-injection *equivalence* suite (recovered run byte-identical to
an uninterrupted one, all five schedulers, sharded and monolithic) lives
in ``tests/test_crash_recovery_equivalence.py``; this module pins the
mechanisms it is built on — torn-write-proof file dumps, strict record
and payload validation, segment truncation, torn-tail repair, and the
abort-impact restore path.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import time

import pytest

from repro import durability

from repro.durability import (
    CHECKPOINT_KIND,
    DurableEngine,
    MANIFEST_NAME,
    recover,
)
from repro.engine import Engine
from repro.errors import (
    DurabilityError,
    ModelError,
    RecoveryError,
    SnapshotError,
    WalCorruptionError,
)
from repro.io import (
    atomic_write_text,
    engine_snapshot_from_json,
    engine_snapshot_to_json,
    graph_from_dict,
    graph_from_json,
    restore_engine,
    step_from_dict,
    wal_record_from_line,
    wal_record_to_line,
)
from repro.model.steps import Begin, Read, Write
from repro.workloads.generator import WorkloadConfig, basic_stream

CONFIG = WorkloadConfig(
    n_transactions=40, n_entities=10, multiprogramming=5,
    write_fraction=0.4, max_accesses=3, seed=11,
)


def _stream():
    return list(basic_stream(CONFIG))


def _durable(tmp_path, **kwargs):
    kwargs.setdefault("scheduler", "conflict-graph")
    kwargs.setdefault("policy", "eager-c1")
    kwargs.setdefault("checkpoint_interval", 16)
    return DurableEngine(wal_dir=tmp_path / "wal", **kwargs)


def _last_segment(wal_dir):
    segments = sorted(
        (wal_dir / "segments").iterdir(), key=lambda p: p.stat().st_mtime
    )
    return segments[-1]


# ---------------------------------------------------------------------------
# Atomic writes
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert list(tmp_path.iterdir()) == [target]  # no tmp litter

    def test_published_file_gets_umask_mode_not_0600(self, tmp_path):
        """mkstemp's private 0600 must not leak through os.replace and
        silently revoke other readers of a regenerated artifact."""
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "shared")
        umask = os.umask(0)
        os.umask(umask)
        assert target.stat().st_mode & 0o777 == 0o666 & ~umask

    def test_failure_mid_write_preserves_old_file(self, tmp_path, monkeypatch):
        """A crash between tmp-write and rename must leave the old file
        byte-identical (the bare ``open(...).write`` bug this replaces
        would have torn it)."""
        target = tmp_path / "snapshot.json"
        atomic_write_text(target, "precious old content")

        def exploding_replace(src, dst):
            raise OSError("simulated crash during publish")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "half-written new content")
        monkeypatch.undo()
        assert target.read_text() == "precious old content"
        assert list(tmp_path.iterdir()) == [target]  # tmp file cleaned up

    def test_cli_dump_output_is_atomic(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        out = tmp_path / "graph.json"
        assert main([
            "dump", "--transactions", "12", "--format", "json",
            "--output", str(out),
        ]) == 0
        first = out.read_text()
        json.loads(first)  # parseable

        def exploding_replace(src, dst):
            raise OSError("simulated crash during publish")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            main([
                "dump", "--transactions", "12", "--seed", "3",
                "--format", "json", "--output", str(out),
            ])
        monkeypatch.undo()
        assert out.read_text() == first  # old dump survived intact


# ---------------------------------------------------------------------------
# WAL record codec
# ---------------------------------------------------------------------------


class TestWalRecords:
    def test_step_roundtrip(self):
        for step in (Begin("T1"), Read("T1", "x"), Write("T1", {"x", "y"})):
            seq, decoded, control = wal_record_from_line(
                wal_record_to_line(7, step)
            )
            assert (seq, decoded, control) == (7, step, None)

    def test_fast_encoder_matches_reference_codec(self):
        """The per-kind f-string fast path must emit byte-identical lines
        to the reference ``wal_record_to_line`` for every step kind."""
        from repro.durability import _step_record_line
        from repro.model.status import AccessMode
        from repro.model.steps import BeginDeclared, Finish, WriteItem

        steps = [
            Begin("T1"),
            Begin('T"quote\\weird'),
            BeginDeclared("T2", {"x": AccessMode.READ, "a": AccessMode.WRITE}),
            Read("T3", "entity-π"),
            Write("T4", frozenset()),
            Write("T4", {"z", "a", "m"}),
            WriteItem("T5", "x"),
            Finish("T6"),
        ]
        for seq, step in enumerate(steps, start=1):
            assert _step_record_line(seq, step) == wal_record_to_line(seq, step)

    def test_control_roundtrip(self):
        seq, step, control = wal_record_from_line(
            wal_record_to_line(3, control="sweep")
        )
        assert (seq, step, control) == (3, None, "sweep")

    @pytest.mark.parametrize("line", [
        "",  # empty
        "{not json",
        '"a string"',
        '{"format":99,"seq":1,"control":"sweep"}',  # bad format
        '{"format":1,"control":"sweep"}',  # missing seq
        '{"format":1,"seq":0,"control":"sweep"}',  # non-positive seq
        '{"format":1,"seq":true,"control":"sweep"}',  # bool seq
        '{"format":1,"seq":1}',  # neither step nor control
        '{"format":1,"seq":1,"control":"dance"}',  # unknown control
        '{"format":1,"seq":1,"step":{"kind":"read","txn":"T1"}}',  # no entity
    ])
    def test_malformed_records_raise_model_error(self, line):
        with pytest.raises(ModelError):
            wal_record_from_line(line)

    def test_encoder_rejects_ambiguous_records(self):
        with pytest.raises(ModelError):
            wal_record_to_line(1)
        with pytest.raises(ModelError):
            wal_record_to_line(1, Begin("T1"), control="sweep")
        with pytest.raises(ModelError):
            wal_record_to_line(1, control="dance")


# ---------------------------------------------------------------------------
# Strict payload validation (the torn-vs-corrupt distinction)
# ---------------------------------------------------------------------------


class TestPayloadValidation:
    def test_truncated_graph_json_is_model_error(self):
        with pytest.raises(ModelError, match="not valid JSON"):
            graph_from_json('{"format": 2, "nodes": [')

    def test_graph_dict_names_missing_section(self):
        with pytest.raises(ModelError, match="'nodes'"):
            graph_from_dict({"format": 2, "closure": {}})
        with pytest.raises(ModelError, match="'closure'"):
            graph_from_dict({"format": 2, "nodes": []})
        with pytest.raises(ModelError, match="'format'"):
            graph_from_dict({})
        with pytest.raises(ModelError):
            graph_from_dict("not a dict")

    def test_graph_dict_wraps_mangled_node(self):
        with pytest.raises(ModelError, match="invalid section"):
            graph_from_dict({
                "format": 1,
                "nodes": [{"txn": "T1", "state": "NOT-A-STATE",
                           "accesses": {}}],
                "arcs": [],
            })

    def test_truncated_snapshot_json_is_model_error(self):
        with pytest.raises(ModelError, match="truncated or not valid"):
            engine_snapshot_from_json('{"format": 1, "config": {"sch')

    def test_step_payload_names_missing_field(self):
        with pytest.raises(ModelError, match="'kind'"):
            step_from_dict({"txn": "T1"})
        with pytest.raises(ModelError, match="missing or invalid"):
            step_from_dict({"kind": "write", "txn": "T1"})

    def test_restore_engine_raises_snapshot_error_not_keyerror(self):
        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        engine.feed_batch(_stream()[:10])
        snapshot = engine.snapshot()
        del snapshot["scheduler_state"]["currency"]
        with pytest.raises(SnapshotError):
            restore_engine(snapshot)
        mangled = engine.snapshot()
        mangled["engine"]["step_index"] = "not-an-int"
        with pytest.raises(SnapshotError):
            restore_engine(mangled)


# ---------------------------------------------------------------------------
# Durable engine mechanics
# ---------------------------------------------------------------------------


class TestDurableEngine:
    def test_refuses_to_reopen_existing_wal(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream()[:5])
        durable.close()
        with pytest.raises(DurabilityError, match="recover"):
            _durable(tmp_path)

    def test_closed_engine_rejects_feeds(self, tmp_path):
        durable = _durable(tmp_path)
        durable.close()
        with pytest.raises(DurabilityError, match="closed"):
            durable.feed(Begin("T1"))

    def test_checkpoint_truncates_covered_segments(self, tmp_path):
        durable = _durable(tmp_path, checkpoint_interval=8)
        durable.feed_many(_stream())
        durable.feed(Begin("TX-extra"))  # ensure the current epoch has data
        segments = list((tmp_path / "wal" / "segments").iterdir())
        epochs = {p.name.split("-")[0] for p in segments}
        assert len(epochs) == 1  # only the current epoch survives
        # every record since the last checkpoint, nothing more
        lines = sum(
            len(p.read_text().splitlines()) for p in segments
        )
        assert lines == durable.seq - durable.last_checkpoint_seq

    def test_manual_checkpoint_and_noop(self, tmp_path):
        durable = _durable(tmp_path, checkpoint_interval=0)
        durable.feed_many(_stream()[:10])
        assert durable.last_checkpoint_seq == 0  # cadence disabled
        assert durable.checkpoint() == 10
        assert durable.checkpoint() is None  # nothing new

    def test_checkpoints_are_incremental(self, tmp_path):
        """Checkpoint N must carry only the delta since checkpoint N-1,
        not the full history (the O(live + interval) cost argument), and
        superseded checkpoints are stripped down to their deltas."""
        durable = _durable(tmp_path, checkpoint_interval=16)
        durable.feed_many(_stream())
        paths = sorted((tmp_path / "wal" / "checkpoints").iterdir())
        assert len(paths) >= 2
        payloads = [json.loads(p.read_text()) for p in paths]
        for payload in payloads[:-1]:
            # Only the latest link keeps a restorable core on disk.
            assert "core" not in payload
            assert payload["core_stripped"] is True
        for payload in payloads:
            assert payload["kind"] == CHECKPOINT_KIND
            assert len(payload["delta"]["results"]) <= 16
        latest = payloads[-1]
        core_state = latest["core"]["scheduler_state"]
        assert "results" not in core_state  # logs live in deltas
        assert "deleted" not in core_state["graph"]
        total = sum(len(p["delta"]["results"]) for p in payloads)
        assert total == latest["seq"]

    def test_rejected_steps_survive_recovery_in_the_input_log(self, tmp_path):
        """A step whose processing *raises* is recorded in the input log
        but produces no result; the checkpoint delta chain must carry it
        (deriving the input log from results would silently drop it)."""
        from repro.errors import SchedulerError

        stream = _stream()
        wal_a = tmp_path / "a"
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=wal_a, checkpoint_interval=4,
        )
        oracle = Engine(scheduler="conflict-graph", policy="eager-c1")

        def feed_both(step):
            for engine in (durable, oracle):
                try:
                    engine.feed(step)
                except SchedulerError:
                    pass

        for step in stream[:10]:
            feed_both(step)
        feed_both(Read("T-unknown", "x"))  # raises: no BEGIN ever seen
        for step in stream[10:20]:
            feed_both(step)
        # crash AFTER a checkpoint covered the raising step
        assert durable.last_checkpoint_seq >= 11
        durable.simulate_crash()
        recovered = recover(wal_a)
        assert engine_snapshot_to_json(
            recovered.engine.snapshot()
        ) == engine_snapshot_to_json(oracle.snapshot())
        assert [str(s) for s in recovered.engine.scheduler.input_schedule] == [
            str(s) for s in oracle.scheduler.input_schedule
        ]

    def test_clean_shutdown_recovers_without_replay(self, tmp_path):
        durable = _durable(tmp_path)
        durable.feed_many(_stream())
        durable.close(checkpoint=True)
        resumed = recover(tmp_path / "wal")
        assert resumed.recovery_info.replayed_steps == 0
        assert resumed.stats.steps_fed == durable.stats.steps_fed

    def test_recovered_engine_keeps_logging(self, tmp_path):
        stream = _stream()
        durable = _durable(tmp_path)
        durable.feed_many(stream[:20])
        durable.simulate_crash()
        resumed = recover(tmp_path / "wal")
        resumed.feed_many(stream[20:40])
        resumed.close()
        # a second crash/recover sees the full prefix
        final = recover(tmp_path / "wal")
        assert final.stats.steps_fed == 40

    def test_sweep_control_record_replays(self, tmp_path):
        stream = _stream()
        durable = _durable(tmp_path, checkpoint_interval=0,
                           sweep_interval=1000)
        durable.feed_many(stream[:25])
        durable.sweep()  # explicit out-of-cadence sweep, logged
        deletions = durable.stats.deletions
        assert deletions > 0
        durable.simulate_crash()
        recovered = recover(tmp_path / "wal")
        assert recovered.stats.deletions == deletions
        assert recovered.recovery_info.replayed_controls == 1


# ---------------------------------------------------------------------------
# Recovery failure modes
# ---------------------------------------------------------------------------


class TestRecoveryFailures:
    def test_missing_manifest(self, tmp_path):
        (tmp_path / "wal").mkdir()
        with pytest.raises(RecoveryError, match="MANIFEST"):
            recover(tmp_path / "wal")

    def test_torn_tail_is_dropped_and_repaired(self, tmp_path):
        stream = _stream()
        durable = _durable(tmp_path)
        durable.feed_many(stream[:20])
        durable.close()
        segment = _last_segment(tmp_path / "wal")
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"format":1,"seq":9999,"step":{"kind":"re')
        recovered = recover(tmp_path / "wal")
        assert recovered.recovery_info.torn_records_dropped == 1
        assert recovered.recovery_info.repaired_segments == (segment.name,)
        assert recovered.stats.steps_fed == 20
        recovered.close()
        # idempotent: the repair removed the torn bytes for good
        again = recover(tmp_path / "wal")
        assert again.recovery_info.torn_records_dropped == 0

    def test_two_torn_tails_are_corruption_not_a_crash(self, tmp_path):
        """A single crash tears at most one append; two torn segment
        tails (possible only through damage) must abort, not be silently
        repaired away."""
        stream = _stream()
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", shards=2, checkpoint_interval=0,
        )
        durable.feed_many(stream[:30])
        durable.close()
        segments = sorted((tmp_path / "wal" / "segments").iterdir())
        assert len(segments) >= 2
        for segment in segments[:2]:
            with open(segment, "a", encoding="utf-8") as handle:
                handle.write('{"format":1,"seq":77,"st')
        with pytest.raises(WalCorruptionError, match="torn segment tails"):
            recover(tmp_path / "wal")

    def test_flush_and_sweep_is_wal_logged(self, tmp_path):
        """The delegated ShardedEngine.flush_and_sweep must not bypass
        the WAL (an un-logged sweep would not survive a crash)."""
        stream = _stream()
        durable = DurableEngine(
            scheduler="conflict-graph", policy="eager-c1",
            wal_dir=tmp_path / "wal", shards=2, checkpoint_interval=0,
            sweep_interval=1000,
        )
        durable.feed_many(stream[:25])
        durable.flush_and_sweep()
        deletions = durable.stats.deletions
        assert deletions > 0
        durable.simulate_crash()
        recovered = recover(tmp_path / "wal")
        assert recovered.stats.deletions == deletions
        assert recovered.recovery_info.replayed_controls == 1

    def test_mid_segment_corruption_aborts(self, tmp_path):
        durable = _durable(tmp_path, checkpoint_interval=0)
        durable.feed_many(_stream()[:20])
        durable.close()
        segment = _last_segment(tmp_path / "wal")
        lines = segment.read_text().splitlines()
        lines[5] = lines[5][: len(lines[5]) // 2]  # tear a MIDDLE record
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="not the segment tail"):
            recover(tmp_path / "wal")

    def test_sequence_gap_aborts(self, tmp_path):
        durable = _durable(tmp_path, checkpoint_interval=0)
        durable.feed_many(_stream()[:20])
        durable.close()
        segment = _last_segment(tmp_path / "wal")
        lines = segment.read_text().splitlines()
        del lines[7]  # a cleanly missing record is a gap, not a torn tail
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="not contiguous"):
            recover(tmp_path / "wal")

    def test_corrupt_checkpoint_aborts_never_skips(self, tmp_path):
        durable = _durable(tmp_path, checkpoint_interval=8)
        durable.feed_many(_stream())
        durable.close()
        checkpoints = sorted((tmp_path / "wal" / "checkpoints").iterdir())
        assert len(checkpoints) >= 2
        checkpoints[-1].write_text('{"format": 1, "kind": "durability-che')
        with pytest.raises(RecoveryError, match="corrupt checkpoint"):
            recover(tmp_path / "wal")

    def test_broken_checkpoint_chain_aborts(self, tmp_path):
        durable = _durable(tmp_path, checkpoint_interval=8)
        durable.feed_many(_stream())
        durable.close()
        checkpoints = sorted((tmp_path / "wal" / "checkpoints").iterdir())
        assert len(checkpoints) >= 3
        checkpoints[1].unlink()  # a missing middle link loses deltas
        with pytest.raises(RecoveryError, match="chain is broken"):
            recover(tmp_path / "wal")

    def test_manifest_is_required_sections(self, tmp_path):
        wal = tmp_path / "wal"
        (wal).mkdir()
        (wal / MANIFEST_NAME).write_text(
            '{"format": 1, "kind": "wal-manifest", "shards": 1}'
        )
        with pytest.raises(RecoveryError, match="'config'"):
            recover(wal)


# ---------------------------------------------------------------------------
# Abort-impact tracking across restore (the restore-path audit)
# ---------------------------------------------------------------------------


def _aborty_stream():
    """A workload the conflict scheduler resolves with aborts."""
    config = WorkloadConfig(
        n_transactions=60, n_entities=6, multiprogramming=8,
        write_fraction=0.6, max_accesses=3, seed=23,
    )
    return list(basic_stream(config))


class TestAbortImpactRestore:
    def test_restore_reenables_abort_impact(self):
        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        engine.feed_batch(_aborty_stream()[:15])
        restored = Engine.restore(engine.snapshot())
        # eager-c1 consumes a dirty set, so the accumulator must be armed
        # the moment the graph exists — not lazily at some later feed.
        assert restored.graph._abort_impact is not None

    def test_restored_dirty_behavior_matches_uninterrupted(self):
        """Aborts after a restore must dirty the same impacted regions an
        uninterrupted run captures — no silent mark_all degradation
        (observable as diverging sweeps_skipped / dirty sets)."""
        stream = _aborty_stream()
        oracle = Engine(scheduler="conflict-graph", policy="eager-c1",
                        sweep_interval=4)
        aborted = 0
        for step in stream:
            aborted += len(oracle.feed(step).aborted)
        assert aborted > 0, "workload was meant to force aborts"

        for cut in (5, len(stream) // 2, len(stream) - 3):
            oracle = Engine(scheduler="conflict-graph", policy="eager-c1",
                            sweep_interval=4)
            oracle.feed_batch(stream)
            first = Engine(scheduler="conflict-graph", policy="eager-c1",
                           sweep_interval=4)
            first.feed_batch(stream[:cut])
            resumed = Engine.restore(
                json.loads(json.dumps(first.snapshot()))
            )
            resumed.feed_batch(stream[cut:])
            assert resumed.sweeps_skipped == oracle.sweeps_skipped
            assert (
                resumed._dirty_tracker.state_dict()
                == oracle._dirty_tracker.state_dict()
            )
            assert engine_snapshot_to_json(
                resumed.snapshot()
            ) == engine_snapshot_to_json(oracle.snapshot())


# ---------------------------------------------------------------------------
# Writer-lock stale reclaim (cross-process)
# ---------------------------------------------------------------------------


def _race_for_lock(wal_dir: str, barrier, queue) -> None:
    """Child process body: everyone acquires at once; report the outcome."""
    from repro.durability import _WalLock
    from repro.errors import WalLockedError

    barrier.wait()
    try:
        lock = _WalLock.acquire(pathlib.Path(wal_dir))
    except WalLockedError:
        queue.put(("lost", os.getpid()))
    except Exception as exc:  # pragma: no cover - diagnostic only
        queue.put(("error", f"{type(exc).__name__}: {exc}"))
    else:
        # Hold long enough that every loser has observed a *live* owner.
        time.sleep(0.5)
        lock.release()
        queue.put(("won", os.getpid()))


class TestWalLockStaleReclaim:
    """Pin the claim-file reclaim protocol: many processes racing to
    reclaim the same dead owner's lock must elect exactly one winner —
    the losers' unlinks can never destroy the winner's freshly-won
    lock (the regression the ``LOCK.claim`` handshake exists to stop).
    """

    def _forge_dead_owner(self, wal_dir: pathlib.Path) -> int:
        # A PID that existed and is now certainly dead: a child we reap.
        probe = multiprocessing.get_context("spawn").Process(target=int)
        probe.start()
        probe.join()
        dead_pid = probe.pid
        assert dead_pid is not None
        (wal_dir / "LOCK").write_text(
            json.dumps({"pid": dead_pid}) + "\n"
        )
        return dead_pid

    def test_exactly_one_process_reclaims_a_dead_lock(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        self._forge_dead_owner(wal_dir)
        context = multiprocessing.get_context("spawn")
        n_racers = 4
        barrier = context.Barrier(n_racers)
        queue = context.Queue()
        racers = [
            context.Process(
                target=_race_for_lock, args=(str(wal_dir), barrier, queue)
            )
            for _ in range(n_racers)
        ]
        for racer in racers:
            racer.start()
        outcomes = [queue.get(timeout=30) for _ in racers]
        for racer in racers:
            racer.join(timeout=30)
        errors = [detail for kind, detail in outcomes if kind == "error"]
        assert not errors, errors
        winners = [pid for kind, pid in outcomes if kind == "won"]
        assert len(winners) == 1, outcomes
        assert len([k for k, _ in outcomes if k == "lost"]) == n_racers - 1
        # The winner released cleanly: the directory is lockable again.
        lock = durability._WalLock.acquire(wal_dir)
        lock.release()

    def test_torn_lock_file_is_reclaimed_in_process(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        (wal_dir / "LOCK").write_text('{"pi')  # torn write: no owner
        lock = durability._WalLock.acquire(wal_dir)
        assert json.loads((wal_dir / "LOCK").read_text())["pid"] == os.getpid()
        lock.release()

    def test_stale_claim_from_dead_claimer_does_not_wedge(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        dead = self._forge_dead_owner(wal_dir)
        (wal_dir / "LOCK.claim").write_text(
            json.dumps({"pid": dead}) + "\n"
        )
        lock = durability._WalLock.acquire(wal_dir)
        assert json.loads((wal_dir / "LOCK").read_text())["pid"] == os.getpid()
        assert not (wal_dir / "LOCK.claim").exists()
        lock.release()

"""Tests for the independent solvers: set cover and DPLL."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReductionError
from repro.reductions.sat import CnfFormula, dpll, random_3sat
from repro.reductions.setcover import (
    SetCoverInstance,
    greedy_cover,
    minimum_cover,
    random_instance,
)


class TestSetCoverInstance:
    def test_is_cover(self):
        inst = SetCoverInstance(
            frozenset({1, 2, 3}),
            (frozenset({1}), frozenset({2, 3}), frozenset({1, 3})),
        )
        assert inst.is_cover([0, 1])
        assert not inst.is_cover([0, 2])
        assert inst.coverable

    def test_foreign_elements_rejected(self):
        with pytest.raises(ReductionError):
            SetCoverInstance(frozenset({1}), (frozenset({2}),))

    def test_uncoverable(self):
        inst = SetCoverInstance(frozenset({1, 2}), (frozenset({1}),))
        assert not inst.coverable
        assert greedy_cover(inst) is None
        assert minimum_cover(inst) is None


class TestSolvers:
    def test_greedy_returns_a_cover(self):
        inst = random_instance(10, 6, seed=4)
        cover = greedy_cover(inst)
        assert cover is not None
        assert inst.is_cover(cover)

    def test_minimum_is_a_cover(self):
        inst = random_instance(10, 6, seed=4)
        cover = minimum_cover(inst)
        assert cover is not None
        assert inst.is_cover(cover)

    def test_minimum_not_larger_than_greedy(self):
        for seed in range(6):
            inst = random_instance(9, 7, seed=seed)
            assert len(minimum_cover(inst)) <= len(greedy_cover(inst))

    @given(st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_minimum_matches_brute_force(self, seed):
        inst = random_instance(6, 5, seed=seed)
        exact = minimum_cover(inst)
        brute = None
        for size in range(1, len(inst.subsets) + 1):
            for combo in itertools.combinations(range(len(inst.subsets)), size):
                if inst.is_cover(combo):
                    brute = size
                    break
            if brute is not None:
                break
        assert exact is not None and len(exact) == brute


class TestCnf:
    def test_evaluate(self):
        formula = CnfFormula(2, ((1, -2), (-1, 2)))
        assert formula.evaluate({1: True, 2: True})
        assert not formula.evaluate({1: True, 2: False})

    def test_empty_clause_rejected(self):
        with pytest.raises(ReductionError):
            CnfFormula(1, ((),))

    def test_out_of_range_literal(self):
        with pytest.raises(ReductionError):
            CnfFormula(1, ((2,),))
        with pytest.raises(ReductionError):
            CnfFormula(1, ((0,),))


class TestDpll:
    def test_satisfiable(self):
        formula = CnfFormula(3, ((1, 2, 3), (-1, 2, 3)))
        model = dpll(formula)
        assert model is not None
        assert formula.evaluate(model)

    def test_unsatisfiable_complete_cube(self):
        clauses = tuple(
            tuple(v if bits & (1 << i) else -v for i, v in enumerate((1, 2, 3)))
            for bits in range(8)
        )
        assert dpll(CnfFormula(3, clauses)) is None

    def test_unit_propagation_conflict(self):
        formula = CnfFormula(2, ((1,), (-1,)))
        assert dpll(formula) is None

    @given(st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_dpll_matches_brute_force(self, seed):
        formula = random_3sat(4, 10, seed=seed)
        brute = any(
            formula.evaluate(
                {v: bool(bits & (1 << (v - 1))) for v in range(1, 5)}
            )
            for bits in range(16)
        )
        assert (dpll(formula) is not None) == brute

    def test_random_3sat_shape(self):
        formula = random_3sat(5, 7, seed=1)
        assert formula.n_vars == 5
        assert len(formula) == 7
        for clause in formula.clauses:
            assert len(clause) == 3
            assert len({abs(lit) for lit in clause}) == 3

    def test_random_3sat_needs_three_vars(self):
        with pytest.raises(ReductionError):
            random_3sat(2, 3)

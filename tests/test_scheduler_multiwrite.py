"""Unit tests for the multiple-write-step scheduler (§5)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidStepError
from repro.model.status import TxnState
from repro.model.steps import Begin, Finish, Read, Write, WriteItem
from repro.scheduler.events import Decision
from repro.scheduler.multiwrite import MultiwriteScheduler


def run(steps):
    scheduler = MultiwriteScheduler()
    results = scheduler.feed_many(steps)
    return scheduler, results


class TestArcs:
    def test_read_after_write(self):
        scheduler, results = run(
            [Begin("B"), WriteItem("B", "x"), Begin("A"), Read("A", "x")]
        )
        assert results[-1].arcs_added == (("B", "A"),)

    def test_write_after_read_and_write(self):
        scheduler, results = run(
            [
                Begin("R"),
                Read("R", "x"),
                Begin("W"),
                WriteItem("W", "x"),
                Begin("V"),
                WriteItem("V", "x"),
            ]
        )
        arcs = set(results[-1].arcs_added)
        assert arcs == {("R", "V"), ("W", "V")}

    def test_cycle_rejected(self):
        scheduler, results = run(
            [
                Begin("A"),
                Read("A", "x"),
                Begin("B"),
                WriteItem("B", "x"),  # A -> B
                Read("B", "y"),
                WriteItem("A", "y"),  # B -> A: cycle
            ]
        )
        assert results[-1].decision is Decision.REJECTED
        assert "A" in results[-1].aborted


class TestDependencies:
    def test_dirty_read_creates_dependency(self):
        scheduler, _ = run(
            [Begin("B"), WriteItem("B", "x"), Begin("A"), Read("A", "x")]
        )
        assert scheduler.graph.info("A").reads_from == {"B"}

    def test_read_from_committed_writer_no_dependency(self):
        scheduler, _ = run(
            [
                Begin("B"),
                WriteItem("B", "x"),
                Finish("B"),  # commits immediately: no deps
                Begin("A"),
                Read("A", "x"),
            ]
        )
        assert scheduler.graph.info("A").reads_from == set()

    def test_transitive_dependencies(self):
        scheduler, _ = run(
            [
                Begin("C"),
                WriteItem("C", "x"),
                Begin("B"),
                Read("B", "x"),
                WriteItem("B", "y"),
                Begin("A"),
                Read("A", "y"),
            ]
        )
        assert scheduler.transitive_dependencies("A") == frozenset({"B", "C"})


class TestCommitProtocol:
    def test_finish_without_dependencies_commits(self):
        scheduler, results = run([Begin("T"), WriteItem("T", "x"), Finish("T")])
        assert scheduler.graph.state("T") is TxnState.COMMITTED
        assert results[-1].committed == ("T",)

    def test_finish_with_active_dependency_stays_f(self):
        scheduler, _ = run(
            [
                Begin("B"),
                WriteItem("B", "x"),
                Begin("A"),
                Read("A", "x"),
                Finish("A"),
            ]
        )
        assert scheduler.graph.state("A") is TxnState.FINISHED

    def test_commit_cascades_when_dependency_commits(self):
        scheduler, results = run(
            [
                Begin("B"),
                WriteItem("B", "x"),
                Begin("A"),
                Read("A", "x"),
                Finish("A"),
                Finish("B"),
            ]
        )
        assert set(results[-1].committed) == {"A", "B"}
        assert scheduler.graph.state("A") is TxnState.COMMITTED

    def test_chain_of_commits(self):
        scheduler, results = run(
            [
                Begin("C"),
                WriteItem("C", "x"),
                Begin("B"),
                Read("B", "x"),
                WriteItem("B", "y"),
                Begin("A"),
                Read("A", "y"),
                Finish("A"),
                Finish("B"),
                Finish("C"),
            ]
        )
        assert set(results[-1].committed) == {"A", "B", "C"}


class TestCascadingAborts:
    def test_abort_cascades_to_dependents(self):
        scheduler, results = run(
            [
                Begin("B"),
                WriteItem("B", "x"),
                Begin("A"),
                Read("A", "x"),  # A depends on B
                Begin("Z"),
                Read("Z", "y"),
                WriteItem("B", "z"),  # harmless
                Read("B", "w"),
                # Force B into a cycle: Z reads y, B writes y after B -> Z?
                WriteItem("Z", "w"),  # B read w: arc B -> Z
                WriteItem("B", "y"),  # Z read y: arc Z -> B: cycle -> abort B
            ]
        )
        assert results[-1].decision is Decision.REJECTED
        assert set(results[-1].aborted) == {"A", "B"}
        assert "A" not in scheduler.graph

    def test_finished_dependent_aborts_too(self):
        scheduler, results = run(
            [
                Begin("B"),
                WriteItem("B", "x"),
                Begin("A"),
                Read("A", "x"),
                Finish("A"),  # A is F, still depends on B
                Begin("Z"),
                Read("Z", "y"),
                Read("B", "w"),
                WriteItem("Z", "w"),  # B -> Z
                WriteItem("B", "y"),  # Z -> B: cycle -> abort B, cascade A
            ]
        )
        assert set(results[-1].aborted) == {"A", "B"}

    def test_committed_never_aborts(self):
        scheduler, _ = run(
            [
                Begin("B"),
                WriteItem("B", "x"),
                Finish("B"),  # B committed
                Begin("A"),
                Read("A", "x"),  # reads committed data: no dependency
            ]
        )
        assert scheduler.graph.state("B") is TxnState.COMMITTED
        assert scheduler.dependents_of("B") == frozenset()


class TestModelPolicing:
    def test_atomic_write_rejected(self):
        scheduler = MultiwriteScheduler()
        scheduler.feed(Begin("T"))
        with pytest.raises(InvalidStepError):
            scheduler.feed(Write("T", {"x"}))

    def test_ignored_after_abort(self):
        scheduler, results = run(
            [
                Begin("A"),
                Read("A", "x"),
                Begin("B"),
                WriteItem("B", "x"),
                Read("B", "y"),
                WriteItem("A", "y"),  # cycle: A aborts
                Read("A", "z"),
            ]
        )
        assert results[-1].decision is Decision.IGNORED

"""Unit tests for the step algebra (repro.model.steps)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidStepError
from repro.model.status import AccessMode
from repro.model.steps import (
    Begin,
    BeginDeclared,
    Finish,
    Read,
    Write,
    WriteItem,
    accessed_entities,
    conflicting_modes,
    reads_then_final_write,
    steps_conflict,
)


class TestConflictingModes:
    def test_write_write_conflicts(self):
        assert conflicting_modes(AccessMode.WRITE, AccessMode.WRITE)

    def test_read_write_conflicts_both_ways(self):
        assert conflicting_modes(AccessMode.READ, AccessMode.WRITE)
        assert conflicting_modes(AccessMode.WRITE, AccessMode.READ)

    def test_read_read_does_not_conflict(self):
        assert not conflicting_modes(AccessMode.READ, AccessMode.READ)


class TestStepsConflict:
    def test_same_transaction_never_conflicts(self):
        assert not steps_conflict(Read("T1", "x"), Write("T1", {"x"}))
        assert not steps_conflict(WriteItem("T1", "x"), WriteItem("T1", "x"))

    def test_different_entities_do_not_conflict(self):
        assert not steps_conflict(Read("T1", "x"), Write("T2", {"y"}))

    def test_read_write_same_entity(self):
        assert steps_conflict(Read("T1", "x"), Write("T2", {"x"}))
        assert steps_conflict(Write("T2", {"x"}), Read("T1", "x"))

    def test_write_item_vs_atomic_write(self):
        assert steps_conflict(WriteItem("T1", "x"), Write("T2", {"x", "y"}))

    def test_read_read_no_conflict(self):
        assert not steps_conflict(Read("T1", "x"), Read("T2", "x"))

    def test_begin_and_finish_conflict_with_nothing(self):
        assert not steps_conflict(Begin("T1"), Write("T2", {"x"}))
        assert not steps_conflict(Finish("T1"), WriteItem("T2", "x"))

    def test_multi_entity_write_overlap(self):
        assert steps_conflict(Write("T1", {"a", "b"}), Write("T2", {"b", "c"}))
        assert not steps_conflict(Write("T1", {"a"}), Write("T2", {"b"}))


class TestAccessedEntities:
    def test_read(self):
        assert accessed_entities(Read("T1", "x")) == frozenset({"x"})

    def test_atomic_write(self):
        assert accessed_entities(Write("T1", {"a", "b"})) == frozenset({"a", "b"})

    def test_empty_write(self):
        assert accessed_entities(Write("T1", set())) == frozenset()

    def test_begin_and_finish_access_nothing(self):
        assert accessed_entities(Begin("T1")) == frozenset()
        assert accessed_entities(Finish("T1")) == frozenset()

    def test_declared_future_accesses_not_counted(self):
        step = BeginDeclared("T1", {"x": AccessMode.WRITE})
        assert accessed_entities(step) == frozenset()


class TestStepValueSemantics:
    def test_write_entities_frozen(self):
        step = Write("T1", {"a"})
        assert isinstance(step.entities, frozenset)

    def test_equality_and_hash(self):
        assert Read("T1", "x") == Read("T1", "x")
        assert hash(Write("T1", {"a", "b"})) == hash(Write("T1", {"b", "a"}))

    def test_begin_declared_equality(self):
        a = BeginDeclared("T1", {"x": AccessMode.READ})
        b = BeginDeclared("T1", {"x": AccessMode.READ})
        assert a == b
        assert hash(a) == hash(b)

    def test_begin_declared_inequality(self):
        a = BeginDeclared("T1", {"x": AccessMode.READ})
        b = BeginDeclared("T1", {"x": AccessMode.WRITE})
        assert a != b

    def test_str_renderings(self):
        assert str(Read("T1", "x")) == "rx(T1)"
        assert str(Write("T1", {"x"})) == "w{x}(T1)"
        assert str(WriteItem("T1", "x")) == "wx(T1)"
        assert str(Begin("T1")) == "begin(T1)"
        assert str(Finish("T1")) == "finish(T1)"


class TestReadsThenFinalWrite:
    def test_shape(self):
        steps = reads_then_final_write("T9", ["a", "b"], ["c"])
        assert isinstance(steps[0], Begin)
        assert all(isinstance(s, Read) for s in steps[1:-1])
        assert isinstance(steps[-1], Write)

    def test_empty_transaction(self):
        steps = reads_then_final_write("T9", [], [])
        assert len(steps) == 2
        assert steps[-1].entities == frozenset()

"""Shard-vs-monolith lockstep equivalence (the sharding soundness gate).

The disjoint-union argument — transactions with disjoint entity footprints
never acquire arcs, locks against each other, or certification edges, so a
partitioned run *is* the monolithic run — is replayed here empirically:
randomized partition-skewed workloads (hypothesis-driven seeds and
cross-partition fractions, so footprint groups merge and migrate mid-run)
are fed step-for-step through a :class:`~repro.engine.ShardedEngine`
(K ∈ {1, 2, 4}) and a monolithic :class:`~repro.engine.Engine`, asserting

* identical per-step :class:`StepResult`s (decisions, arcs, aborts,
  commits, releases, blockers),
* identical abort sets and deletion sets,
* identical final live graphs (nodes, payloads, arcs — union over shards),
* identical accepted subschedules,

across **all five schedulers** with their canonical deletion policies.

CI refuses to pass if this module is skipped (same guard as the kernel
equivalence suite): it is the safety net under the whole sharding layer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, ShardedEngine
from repro.model.status import AccessMode
from repro.model.steps import Begin, Read, Write
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

#: (scheduler, canonical policy, stream factory) for every scheduler.
#: ``optimal`` is deliberately absent: its exact search caps candidates
#: graph-globally, the one registered policy that is not shard-local.
CASES = [
    ("conflict-graph", "eager-c1", basic_stream),
    ("conflict-graph", "noncurrent", basic_stream),
    ("certifier", "noncurrent", basic_stream),
    ("strict-2pl", "lemma1", basic_stream),
    ("multiwrite", "eager-c3", multiwrite_stream),
    ("predeclared", "eager-c4", predeclared_stream),
]

SHARD_COUNTS = [1, 2, 4]


def _workload(seed: int, cross: float) -> WorkloadConfig:
    # mpl is kept =< 5 so eager-c3's abort-set enumeration stays well under
    # its max_actives guard in the monolith (the guard counts *global*
    # actives, which a shard never sees — the one intentional asymmetry).
    return WorkloadConfig(
        n_transactions=45,
        n_entities=16,
        multiprogramming=5,
        write_fraction=0.5,
        max_accesses=3,
        zipf_s=0.4,
        seed=seed,
        partitions=4,
        cross_fraction=cross,
    )


def _graph_fingerprint(graphs):
    """Nodes (with full payloads) and arcs, unioned over *graphs*."""
    nodes = {}
    arcs = set()
    for graph in graphs:
        for txn in graph.nodes():
            info = graph.info(txn)
            nodes[txn] = (
                info.state,
                tuple(sorted(info.accesses.items())),
                None
                if info.future is None
                else tuple(sorted(info.future.items())),
                tuple(sorted(info.reads_from)),
            )
        arcs.update(graph.arcs())
    return nodes, arcs


def _assert_lockstep(scheduler, policy, streamer, seed, cross, shards):
    config = _workload(seed, cross)
    stream = list(streamer(config))
    mono = Engine(scheduler=scheduler, policy=policy)
    sharded = ShardedEngine(scheduler=scheduler, policy=policy, shards=shards)
    for step in stream:
        expected = mono.feed(step)
        actual = sharded.feed(step)
        assert actual == expected, (
            f"{scheduler}/{policy} K={shards} cross={cross} diverged at "
            f"{step}: {actual} != {expected}"
        )
    sharded.flush_pending()
    assert sharded.aborted == mono.aborted
    assert sorted(sharded.stats.deleted_ids) == sorted(
        mono.stats.deleted_ids
    )
    assert _graph_fingerprint(sharded.graphs()) == _graph_fingerprint(
        [mono.graph]
    )
    assert sharded.accepted_subschedule() == mono.accepted_subschedule()
    assert sharded.stats.steps_fed == mono.stats.steps_fed
    for graph in sharded.graphs():
        graph.check_invariants()
    return sharded


class TestLockstepAllSchedulers:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize(
        "scheduler,policy,streamer",
        CASES,
        ids=[f"{s}-{p}" for s, p, _ in CASES],
    )
    def test_disjoint_workload(self, scheduler, policy, streamer, shards):
        _assert_lockstep(scheduler, policy, streamer, seed=13, cross=0.0,
                         shards=shards)

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize(
        "scheduler,policy,streamer",
        CASES,
        ids=[f"{s}-{p}" for s, p, _ in CASES],
    )
    def test_merging_workload(self, scheduler, policy, streamer, shards):
        """Cross-partition traffic forces footprint merges mid-run."""
        sharded = _assert_lockstep(
            scheduler, policy, streamer, seed=21, cross=0.35, shards=shards
        )
        assert sharded.router.merges > 0, (
            "workload was meant to force footprint merges"
        )


class TestLockstepHypothesis:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        cross=st.sampled_from([0.0, 0.1, 0.35]),
        shards=st.sampled_from([2, 4]),
        case=st.sampled_from(range(len(CASES))),
    )
    def test_randomized_lockstep(self, seed, cross, shards, case):
        scheduler, policy, streamer = CASES[case]
        _assert_lockstep(scheduler, policy, streamer, seed, cross, shards)


class TestForcedMigrationScenario:
    """A hand-written stream whose groups provably merge across shards."""

    def test_two_groups_merge_and_migrate(self):
        steps = [
            # Group 1 on entities {x}: three transactions.
            Begin("A1"), Read("A1", "x"), Write("A1", {"x"}),
            Begin("A2"), Read("A2", "x"), Write("A2", {"x"}),
            # Group 2 on entities {y}.
            Begin("B1"), Read("B1", "y"), Write("B1", {"y"}),
            # The bridge: touches both x and y — groups must merge.
            Begin("M"), Read("M", "x"), Read("M", "y"), Write("M", {"y"}),
            # Post-merge traffic on both entity families.
            Begin("C1"), Read("C1", "y"), Write("C1", {"x"}),
        ]
        mono = Engine(scheduler="conflict-graph", policy="never")
        sharded = ShardedEngine(
            scheduler="conflict-graph", policy="never", shards=2
        )
        for step in steps:
            assert sharded.feed(step) == mono.feed(step)
        sharded.flush_pending()
        assert sharded.router.merges >= 1
        assert _graph_fingerprint(sharded.graphs()) == _graph_fingerprint(
            [mono.graph]
        )
        # The merged group now lives on exactly one shard.
        shards_used = {
            sharded.shard_of(txn) for txn in ("A1", "A2", "B1", "M", "C1")
        }
        assert len(shards_used) == 1

    def test_migration_preserves_predeclared_parked_steps(self):
        from repro.model.steps import BeginDeclared, Finish, WriteItem

        R, W = AccessMode.READ, AccessMode.WRITE
        steps = [
            # Group 1: P will write x later; Q reads x first, so Q -> P.
            BeginDeclared("P", {"x": W}),
            BeginDeclared("Q", {"x": R, "z": R}),
            Read("Q", "x"),
            # P's write must wait? No: P -> nothing yet. Park Q's z read
            # behind nothing; now group 2 on y.
            BeginDeclared("Y1", {"y": W}),
            WriteItem("Y1", "y"),
            # Bridge: declares x and y — merges the groups.
            BeginDeclared("M", {"x": R, "y": R}),
            Read("M", "y"),
            WriteItem("P", "x"),
            Finish("P"),
            Read("M", "x"),
            Read("Q", "z"),
            Finish("Q"),
            Finish("M"),
            Finish("Y1"),
        ]
        mono = Engine(scheduler="predeclared", policy="eager-c4")
        sharded = ShardedEngine(
            scheduler="predeclared", policy="eager-c4", shards=2
        )
        for step in steps:
            assert sharded.feed(step) == mono.feed(step), step
        assert _graph_fingerprint(sharded.graphs()) == _graph_fingerprint(
            [mono.graph]
        )
        assert sorted(sharded.stats.deleted_ids) == sorted(
            mono.stats.deleted_ids
        )

"""Tests for entities, the universe, access modes, and txn states."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.model.entities import EntityUniverse
from repro.model.status import AccessMode, TxnState, at_least_as_strong


class TestEntityUniverse:
    def test_contains_and_len(self):
        uni = EntityUniverse(["x", "y"])
        assert "x" in uni and "y" in uni
        assert len(uni) == 2

    def test_fresh_never_collides(self):
        uni = EntityUniverse(["_fresh0", "_fresh1"])
        fresh = uni.fresh()
        assert fresh not in {"_fresh0", "_fresh1"}
        assert fresh in uni

    def test_fresh_distinct(self):
        uni = EntityUniverse()
        assert uni.fresh() != uni.fresh()

    def test_update_and_snapshot(self):
        uni = EntityUniverse()
        uni.update(["a", "b"])
        snap = uni.snapshot()
        uni.add("c")
        assert snap == frozenset({"a", "b"})

    def test_empty_prefix_rejected(self):
        with pytest.raises(WorkloadError):
            EntityUniverse(fresh_prefix="")


class TestAccessMode:
    def test_order(self):
        assert AccessMode.READ < AccessMode.WRITE

    def test_at_least_as_strong(self):
        assert at_least_as_strong(AccessMode.WRITE, AccessMode.READ)
        assert at_least_as_strong(AccessMode.WRITE, AccessMode.WRITE)
        assert at_least_as_strong(AccessMode.READ, AccessMode.READ)
        assert not at_least_as_strong(AccessMode.READ, AccessMode.WRITE)

    def test_is_write(self):
        assert AccessMode.WRITE.is_write
        assert not AccessMode.READ.is_write

    def test_str(self):
        assert str(AccessMode.READ) == "read"
        assert str(AccessMode.WRITE) == "write"


class TestTxnState:
    def test_completed_covers_f_and_c(self):
        assert TxnState.FINISHED.is_completed
        assert TxnState.COMMITTED.is_completed
        assert not TxnState.ACTIVE.is_completed
        assert not TxnState.ABORTED.is_completed

    def test_active_aborted_flags(self):
        assert TxnState.ACTIVE.is_active
        assert TxnState.ABORTED.is_aborted
        assert not TxnState.COMMITTED.is_active

    def test_paper_letters(self):
        assert TxnState.ACTIVE.paper_letter == "A"
        assert TxnState.FINISHED.paper_letter == "F"
        assert TxnState.COMMITTED.paper_letter == "C"
        assert TxnState.ABORTED.paper_letter == "-"

"""Tests for the incrementally maintained transitive closure.

The load-bearing claim (§3): with a maintained closure, the removal
operation D(G, T) is just "delete the node from the closure".  The property
tests drive random DAG mutations and assert the stored closure equals a
recomputed one after every operation.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CycleError, GraphError, NodeNotFoundError
from repro.graphs.closure import ClosureGraph
from repro.graphs.digraph import DiGraph


def _chain(n: int) -> ClosureGraph:
    graph = ClosureGraph()
    for i in range(n):
        graph.add_node(i)
    for i in range(n - 1):
        graph.add_arc(i, i + 1)
    return graph


class TestClosureBasics:
    def test_reaches_transitively(self):
        graph = _chain(5)
        assert graph.reaches(0, 4)
        assert not graph.reaches(4, 0)
        assert not graph.reaches(0, 0)  # nonempty paths only in a DAG

    def test_descendants_ancestors(self):
        graph = _chain(4)
        assert graph.descendants(1) == frozenset({2, 3})
        assert graph.ancestors(2) == frozenset({0, 1})

    def test_would_close_cycle(self):
        graph = _chain(3)
        assert graph.would_close_cycle(2, 0)
        assert graph.would_close_cycle(1, 1)
        assert not graph.would_close_cycle(0, 2)

    def test_add_arc_rejects_cycle(self):
        graph = _chain(3)
        with pytest.raises(CycleError):
            graph.add_arc(2, 0)

    def test_add_arc_rejects_self_loop(self):
        graph = _chain(1)
        with pytest.raises(GraphError):
            graph.add_arc(0, 0)

    def test_duplicate_arc_noop(self):
        graph = _chain(2)
        graph.add_arc(0, 1)
        assert graph.arc_count() == 1

    def test_missing_nodes(self):
        graph = ClosureGraph()
        with pytest.raises(NodeNotFoundError):
            graph.reaches("a", "b")
        graph.add_node("a")
        with pytest.raises(NodeNotFoundError):
            graph.add_arc("a", "b")


class TestContractVsAbort:
    def test_contract_preserves_paths(self):
        graph = _chain(3)
        graph.contract(1)
        assert graph.reaches(0, 2)
        assert graph.has_arc(0, 2)  # bypass arc materialized

    def test_abort_loses_paths(self):
        graph = _chain(3)
        graph.remove_node_abort(1)
        assert not graph.reaches(0, 2)
        assert not graph.has_arc(0, 2)

    def test_contract_then_invariants(self):
        graph = _chain(6)
        graph.add_node("side")
        graph.add_arc(2, "side")
        graph.contract(2)
        graph.check_invariants()
        assert graph.reaches(0, "side")

    def test_abort_then_invariants(self):
        graph = _chain(6)
        graph.remove_node_abort(3)
        graph.check_invariants()
        assert graph.reaches(0, 2)
        assert not graph.reaches(0, 4)

    def test_closure_equals_contracted_digraph_closure(self):
        """The §3 claim: dropping the node from the closure == closure of
        the contracted graph."""
        graph = ClosureGraph()
        arcs = [("a", "m"), ("m", "b"), ("c", "m"), ("m", "d"), ("a", "d")]
        for node in "ambcd":
            graph.add_node(node)
        for tail, head in arcs:
            graph.add_arc(tail, head)
        digraph = graph.as_digraph()
        digraph.contract("m")
        graph.contract("m")
        nxg = nx.DiGraph(list(digraph.arcs()))
        nxg.add_nodes_from(digraph.nodes())
        for u in digraph.nodes():
            expected = {v for v in digraph.nodes() if v != u and nx.has_path(nxg, u, v)}
            assert graph.descendants(u) == frozenset(expected)


# Operation stream: add arcs among 8 nodes (i<j keeps it acyclic), with
# interleaved contractions/aborts.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("arc"), st.integers(0, 7), st.integers(0, 7)).filter(
            lambda t: t[1] < t[2]
        ),
        st.tuples(st.just("contract"), st.integers(0, 7), st.none()),
        st.tuples(st.just("abort"), st.integers(0, 7), st.none()),
    ),
    max_size=16,
)


class TestClosureProperties:
    @given(_ops)
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold_under_random_mutation(self, ops):
        graph = ClosureGraph()
        for i in range(8):
            graph.add_node(i)
        for op, a, b in ops:
            if op == "arc":
                if a in graph and b in graph and not graph.would_close_cycle(a, b):
                    graph.add_arc(a, b)
            elif op == "contract":
                if a in graph:
                    graph.contract(a)
            else:
                if a in graph:
                    graph.remove_node_abort(a)
        graph.check_invariants()

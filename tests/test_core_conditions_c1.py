"""Tests for C1 (Theorem 1), Lemma 1, and Corollary 1 on fixed graphs."""

from __future__ import annotations

import pytest

from repro.core.conditions import (
    c1_violations,
    can_delete,
    has_no_active_predecessors,
    is_noncurrent,
    noncurrent_transactions,
)
from repro.errors import NotCompletedError, UnknownTransactionError
from repro.model.status import AccessMode as M
from repro.model.steps import Begin, Read, Write
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.workloads.traces import corollary1_schedule, lemma1_schedule

from tests.conftest import build_graph


class TestExample1:
    """The paper's own analysis of Fig. 1, exactly."""

    def test_both_satisfy_c1(self, fig1_graph):
        assert can_delete(fig1_graph, "T2")
        assert can_delete(fig1_graph, "T3")

    def test_t1_not_deletable(self, fig1_graph):
        with pytest.raises(NotCompletedError):
            can_delete(fig1_graph, "T1")

    def test_after_deleting_t3_t2_locked(self, fig1_graph):
        reduced = fig1_graph.reduced_by(["T3"])
        assert not can_delete(reduced, "T2")

    def test_after_deleting_t2_t3_locked(self, fig1_graph):
        reduced = fig1_graph.reduced_by(["T2"])
        assert not can_delete(reduced, "T3")

    def test_violation_details(self, fig1_graph):
        reduced = fig1_graph.reduced_by(["T3"])
        violations = c1_violations(reduced, "T2")
        assert len(violations) == 1
        violation = violations[0]
        assert violation.active_pred == "T1"
        assert violation.entity == "x"
        assert violation.required_mode is M.WRITE


class TestC1EdgeCases:
    def test_unknown_candidate(self, empty_graph):
        with pytest.raises(UnknownTransactionError):
            can_delete(empty_graph, "ghost")

    def test_no_accesses_vacuously_deletable(self):
        graph = build_graph(
            {"A": "A", "T": "C"}, [("A", "T")], []
        )
        assert can_delete(graph, "T")

    def test_no_active_predecessors_deletable(self):
        graph = build_graph(
            {"T": "C", "Later": "A"},
            [("T", "Later")],
            [("T", "x", M.WRITE)],
        )
        assert can_delete(graph, "T")

    def test_witness_must_match_strength(self):
        # Active -> Ti(writes x); witness only reads x: insufficient.
        graph = build_graph(
            {"A": "A", "Ti": "C", "Tk": "C"},
            [("A", "Ti"), ("A", "Tk")],
            [("Ti", "x", M.WRITE), ("Tk", "x", M.READ)],
        )
        assert not can_delete(graph, "Ti")

    def test_write_witness_covers_read_access(self):
        graph = build_graph(
            {"A": "A", "Ti": "C", "Tk": "C"},
            [("A", "Ti"), ("A", "Tk")],
            [("Ti", "x", M.READ), ("Tk", "x", M.WRITE)],
        )
        assert can_delete(graph, "Ti")

    def test_witness_path_may_pass_through_candidate(self):
        # A -> Ti -> Tk: the only path to the witness goes through Ti
        # itself; deletion bypasses it, so the witness still counts.
        graph = build_graph(
            {"A": "A", "Ti": "C", "Tk": "C"},
            [("A", "Ti"), ("Ti", "Tk")],
            [("Ti", "x", M.WRITE), ("Tk", "x", M.WRITE)],
        )
        assert can_delete(graph, "Ti")

    def test_tightness_blocks_paths_through_actives(self):
        # A1 -> A2(active) -> Ti: A1 is NOT a tight predecessor.
        graph = build_graph(
            {"A1": "A", "A2": "A", "Ti": "C"},
            [("A1", "A2"), ("A2", "Ti")],
            [("Ti", "x", M.WRITE)],
        )
        # A2 is a tight (direct) predecessor with no witness: violated.
        violations = c1_violations(graph, "Ti")
        assert {v.active_pred for v in violations} == {"A2"}

    def test_multiple_entities_all_need_witnesses(self):
        graph = build_graph(
            {"A": "A", "Ti": "C", "Tk": "C"},
            [("A", "Ti"), ("A", "Tk")],
            [
                ("Ti", "x", M.WRITE),
                ("Ti", "y", M.READ),
                ("Tk", "x", M.WRITE),
            ],
        )
        violations = c1_violations(graph, "Ti")
        assert [(v.entity, v.required_mode) for v in violations] == [("y", M.READ)]

    def test_first_only_short_circuits(self):
        graph = build_graph(
            {"A": "A", "Ti": "C"},
            [("A", "Ti")],
            [("Ti", "x", M.WRITE), ("Ti", "y", M.WRITE)],
        )
        assert len(c1_violations(graph, "Ti", first_only=True)) == 1
        assert len(c1_violations(graph, "Ti")) == 2


class TestLemma1:
    def test_trace(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(lemma1_schedule())
        graph = scheduler.graph
        assert has_no_active_predecessors(graph, "T1")
        assert can_delete(graph, "T1")

    def test_lemma1_implies_c1(self, fig1_graph):
        # Lemma 1 is sufficient: wherever it holds, C1 holds.
        for txn in fig1_graph.completed_transactions():
            if has_no_active_predecessors(fig1_graph, txn):
                assert can_delete(fig1_graph, txn)

    def test_lemma1_is_not_necessary(self, fig1_graph):
        # Example 1's T2 has an active predecessor yet satisfies C1.
        assert not has_no_active_predecessors(fig1_graph, "T2")
        assert can_delete(fig1_graph, "T2")


class TestCorollary1:
    def test_trace(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(corollary1_schedule())
        graph, currency = scheduler.graph, scheduler.currency
        assert is_noncurrent(currency, graph, "T1")
        assert not is_noncurrent(currency, graph, "T2")
        assert noncurrent_transactions(currency, graph) == frozenset({"T1"})

    def test_noncurrent_implies_c1_on_conflict_graphs(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(corollary1_schedule())
        for txn in noncurrent_transactions(scheduler.currency, scheduler.graph):
            assert can_delete(scheduler.graph, txn)

    def test_fig1_currency(self, fig1_graph):
        # Example 1's text: "transaction T3 is current, but T2 is not".
        scheduler = ConflictGraphScheduler()
        from repro.workloads.traces import example1_schedule

        scheduler.feed_many(example1_schedule())
        currency = scheduler.currency
        assert currency.is_current("T3")
        assert not currency.is_current("T2")

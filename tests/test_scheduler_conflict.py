"""Unit tests for the basic conflict-graph scheduler (Rules 1-3)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidStepError, SchedulerError
from repro.model.status import AccessMode, TxnState
from repro.model.steps import Begin, Finish, Read, Write, WriteItem
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.scheduler.events import Decision


def run(steps):
    scheduler = ConflictGraphScheduler()
    results = scheduler.feed_many(steps)
    return scheduler, results


class TestRule1:
    def test_begin_adds_node(self):
        scheduler, results = run([Begin("T1")])
        assert results[0].accepted
        assert "T1" in scheduler.graph
        assert scheduler.graph.state("T1") is TxnState.ACTIVE

    def test_duplicate_begin_rejected(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed(Begin("T1"))
        with pytest.raises(Exception):
            scheduler.feed(Begin("T1"))


class TestRule2:
    def test_read_draws_arcs_from_writers(self):
        scheduler, results = run(
            [
                Begin("T1"),
                Write("T1", {"x"}),
                Begin("T2"),
                Read("T2", "x"),
            ]
        )
        assert results[-1].arcs_added == (("T1", "T2"),)
        assert scheduler.graph.has_arc("T1", "T2")

    def test_read_ignores_pure_readers(self):
        scheduler, results = run(
            [Begin("T1"), Read("T1", "x"), Begin("T2"), Read("T2", "x")]
        )
        assert results[-1].arcs_added == ()

    def test_read_records_access(self):
        scheduler, _ = run([Begin("T1"), Read("T1", "x")])
        assert scheduler.graph.info("T1").accesses == {"x": AccessMode.READ}

    def test_read_by_unknown_transaction(self):
        scheduler = ConflictGraphScheduler()
        with pytest.raises(SchedulerError):
            scheduler.feed(Read("T1", "x"))


class TestRule3:
    def test_write_draws_arcs_from_all_accessors(self):
        scheduler, results = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Write("T2", {"x"}),
            ]
        )
        assert results[-1].arcs_added == (("T1", "T2"),)

    def test_write_completes_and_commits(self):
        scheduler, results = run([Begin("T1"), Write("T1", {"x"})])
        assert scheduler.graph.state("T1") is TxnState.COMMITTED
        assert results[-1].committed == ("T1",)

    def test_multi_entity_write_single_arc_per_peer(self):
        scheduler, results = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Read("T1", "y"),
                Begin("T2"),
                Write("T2", {"x", "y"}),
            ]
        )
        assert results[-1].arcs_added == (("T1", "T2"),)

    def test_empty_write_completes_read_only_txn(self):
        scheduler, results = run([Begin("T1"), Read("T1", "x"), Write("T1", set())])
        assert results[-1].accepted
        assert scheduler.graph.state("T1") is TxnState.COMMITTED


class TestCycleRejection:
    def test_two_transaction_cycle(self):
        scheduler, results = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),  # arc T1 -> T2
                Write("T1", {"x"}),  # would add T2 -> T1: cycle
            ]
        )
        assert results[-1].decision is Decision.REJECTED
        assert results[-1].aborted == ("T1",)
        assert "T1" not in scheduler.graph
        assert scheduler.aborted == frozenset({"T1"})

    def test_aborted_node_loses_paths(self):
        scheduler, _ = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),
                Write("T1", {"x"}),  # T1 aborts
            ]
        )
        # T2's node survives; T1's arcs are gone.
        assert scheduler.graph.predecessors("T2") == frozenset()

    def test_read_can_also_abort(self):
        scheduler, results = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "y"),
                Write("T2", {"x"}),  # T1 -> T2
                Begin("T3"),
                Read("T3", "y"),
                Write("T3", {"y"}),  # T2 -> T3 (T2 read y first)
                Read("T1", "y"),  # writer T3 -> T1 closes T1->T2->T3->T1
            ]
        )
        assert results[-1].decision is Decision.REJECTED
        assert results[-1].aborted == ("T1",)

    def test_steps_of_aborted_transaction_ignored(self):
        scheduler, results = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),
                Write("T1", {"x"}),  # T1 aborts
                Read("T1", "y"),  # arrives late: ignored
            ]
        )
        assert results[-1].decision is Decision.IGNORED

    def test_ignored_steps_do_not_touch_graph(self):
        scheduler, _ = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),
                Write("T1", {"x"}),
                Read("T1", "y"),
            ]
        )
        assert "T1" not in scheduler.graph


class TestAcceptedSubschedule:
    def test_projection_excludes_aborted(self):
        scheduler, _ = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),
                Write("T1", {"x"}),
            ]
        )
        accepted = scheduler.accepted_subschedule()
        assert accepted.transactions() == frozenset({"T2"})

    def test_input_schedule_keeps_everything(self):
        scheduler, _ = run([Begin("T1"), Write("T1", set())])
        assert len(scheduler.input_schedule) == 2


class TestModelPolicing:
    def test_multiwrite_step_rejected(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed(Begin("T1"))
        with pytest.raises(InvalidStepError):
            scheduler.feed(WriteItem("T1", "x"))

    def test_finish_step_rejected(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed(Begin("T1"))
        with pytest.raises(InvalidStepError):
            scheduler.feed(Finish("T1"))

    def test_step_after_completion_rejected(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed(Begin("T1"))
        scheduler.feed(Write("T1", set()))
        with pytest.raises(SchedulerError):
            scheduler.feed(Read("T1", "x"))


class TestCurrencyTracking:
    def test_last_writer_wins(self):
        scheduler, _ = run(
            [
                Begin("T1"),
                Write("T1", {"x"}),
                Begin("T2"),
                Write("T2", {"x"}),
            ]
        )
        assert scheduler.currency.last_writer["x"] == "T2"
        assert not scheduler.currency.is_current("T1")

    def test_readers_since_write_reset(self):
        scheduler, _ = run(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Write("T2", {"x"}),
            ]
        )
        assert scheduler.currency.readers_since_write["x"] == set()
        assert scheduler.currency.is_current("T2")

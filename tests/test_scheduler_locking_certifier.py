"""Unit tests for strict 2PL and the optimistic certifier."""

from __future__ import annotations

import pytest

from repro.analysis.serializability import is_conflict_serializable
from repro.errors import SchedulerError
from repro.model.steps import Begin, Read, Write
from repro.scheduler.certifier import Certifier
from repro.scheduler.events import Decision
from repro.scheduler.locking import StrictTwoPhaseLocking


def run_2pl(steps):
    scheduler = StrictTwoPhaseLocking()
    return scheduler, scheduler.feed_many(steps)


def run_cert(steps):
    scheduler = Certifier()
    return scheduler, scheduler.feed_many(steps)


class TestLockingBasics:
    def test_shared_locks_coexist(self):
        scheduler, results = run_2pl(
            [Begin("T1"), Read("T1", "x"), Begin("T2"), Read("T2", "x")]
        )
        assert all(r.decision is Decision.ACCEPTED for r in results)

    def test_exclusive_blocks_reader(self):
        # T1 takes exclusive x at its final write... writes release at
        # commit, so use the reverse: reader blocks writer.
        scheduler, results = run_2pl(
            [Begin("T1"), Read("T1", "x"), Begin("T2"), Write("T2", {"x"})]
        )
        assert results[-1].decision is Decision.DELAYED
        assert results[-1].blocked_on == ("T1",)

    def test_commit_releases_and_drains(self):
        scheduler, results = run_2pl(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Write("T2", {"x"}),  # blocked on T1
                Write("T1", set()),  # T1 commits; T2's write released
            ]
        )
        assert [str(s) for s in results[-1].released] == ["w{x}(T2)"]
        assert set(results[-1].committed) == {"T1", "T2"}

    def test_closed_at_commit(self):
        scheduler, _ = run_2pl([Begin("T1"), Read("T1", "x"), Write("T1", set())])
        assert scheduler.retained_transactions() == frozenset()
        assert scheduler.committed_transactions() == ("T1",)

    def test_upgrade_own_shared_lock(self):
        scheduler, results = run_2pl(
            [Begin("T1"), Read("T1", "x"), Write("T1", {"x"})]
        )
        assert results[-1].decision is Decision.ACCEPTED

    def test_upgrade_blocked_by_other_sharer(self):
        scheduler, results = run_2pl(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T1", {"x"}),
            ]
        )
        assert results[-1].decision is Decision.DELAYED


class TestLockingDeadlock:
    def test_two_transaction_deadlock_aborts_requester(self):
        scheduler, results = run_2pl(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "y"),
                Write("T1", {"y"}),  # T1 waits for T2
                Write("T2", {"x"}),  # T2 waits for T1: deadlock
            ]
        )
        assert results[-1].decision is Decision.REJECTED
        assert "T2" in results[-1].aborted
        # T2's abort released y: T1's parked write drains and commits.
        assert "T1" in scheduler.committed_transactions()

    def test_accepted_schedule_is_csr(self):
        scheduler, _ = run_2pl(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "y"),
                Write("T1", {"y"}),
                Write("T2", {"x"}),
            ]
        )
        accepted = scheduler.accepted_subschedule()
        assert is_conflict_serializable(accepted)

    def test_steps_of_deadlock_victim_ignored(self):
        scheduler, results = run_2pl(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "y"),
                Write("T1", {"y"}),
                Write("T2", {"x"}),  # T2 aborted
                Read("T2", "z"),
            ]
        )
        assert results[-1].decision is Decision.IGNORED


class TestCertifier:
    def test_nonconflicting_certifications(self):
        scheduler, results = run_cert(
            [
                Begin("T1"),
                Read("T1", "x"),
                Write("T1", {"y"}),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"z"}),
            ]
        )
        assert all(r.decision is Decision.ACCEPTED for r in results)
        assert len(scheduler.graph) == 2

    def test_stale_read_aborts(self):
        scheduler, results = run_cert(
            [
                Begin("T1"),
                Read("T1", "x"),  # reads pre-image of T2's write
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),  # certified
                Write("T1", {"x"}),  # T1: read before T2 wrote, writes after
            ]
        )
        assert results[-1].decision is Decision.REJECTED
        assert results[-1].aborted == ("T1",)

    def test_read_only_transaction_certifies(self):
        scheduler, results = run_cert(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),
                Write("T1", set()),  # read x before the overwrite: T1 -> T2
            ]
        )
        assert results[-1].decision is Decision.ACCEPTED
        assert scheduler.graph.has_arc("T1", "T2")

    def test_arcs_respect_read_times(self):
        scheduler, _ = run_cert(
            [
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),
                Begin("T1"),
                Read("T1", "x"),  # reads T2's installed value
                Write("T1", set()),
            ]
        )
        assert scheduler.graph.has_arc("T2", "T1")

    def test_accepted_schedule_csr(self):
        scheduler, _ = run_cert(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", {"x"}),
                Write("T1", {"x"}),
            ]
        )
        accepted = scheduler.accepted_subschedule()
        assert is_conflict_serializable(accepted)

    def test_noncurrent_deletion_offer(self):
        scheduler, _ = run_cert(
            [
                Begin("T1"),
                Read("T1", "a"),
                Write("T1", {"b"}),
                Begin("T2"),
                Read("T2", "b"),
                Write("T2", {"a", "b"}),
            ]
        )
        # T1's accesses (a, b) are both overwritten by T2: noncurrent.
        assert scheduler.deletable_noncurrent() == frozenset({"T1"})

    def test_unknown_transaction_read(self):
        scheduler = Certifier()
        with pytest.raises(SchedulerError):
            scheduler.feed(Read("T9", "x"))

"""Crash-injection recovery equivalence (the durability soundness gate).

The durability layer's whole promise is that a crash costs nothing but
the torn final record: recover() must rebuild *exactly* the engine an
uninterrupted run would have produced over the same logged prefix.  This
suite replays that promise empirically: a durable engine is killed
between two arbitrary steps (hypothesis-chosen cut point, optionally
with a torn record appended to simulate the crash landing mid-append),
recovered, driven to the end of the stream, and compared against an
oracle engine that never crashed —

* **byte-identical snapshots** (`engine_snapshot_to_json` of both
  engines compares the full serialized state: graph kernel rows and
  interner layout, currency, input/result logs, scheduler-variant extra
  state, GcStats, sweep cadence, router forest in sharded mode),
* identical accepted subschedules,
* identical deletion sets (order included) and abort sets,

across **all five schedulers** with their canonical deletion policies
and ``shards ∈ {1, 4}``.

CI refuses to pass if this module is skipped (same guard as the kernel
and sharding equivalence suites): it is the safety net under the
durability layer.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import DurableEngine, recover
from repro.engine import build_engine
from repro.io import engine_snapshot_to_json
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

#: (scheduler, canonical policy, stream factory) — all five schedulers.
CASES = [
    ("conflict-graph", "eager-c1", basic_stream),
    ("certifier", "noncurrent", basic_stream),
    ("strict-2pl", "lemma1", basic_stream),
    ("multiwrite", "eager-c3", multiwrite_stream),
    ("predeclared", "eager-c4", predeclared_stream),
]

SHARD_COUNTS = [1, 4]


def _workload(seed: int) -> WorkloadConfig:
    return WorkloadConfig(
        n_transactions=40,
        n_entities=14,
        multiprogramming=5,
        write_fraction=0.5,
        max_accesses=3,
        zipf_s=0.4,
        seed=seed,
        partitions=4,
        cross_fraction=0.25,
    )


def _fingerprint(engine):
    """Everything the acceptance gate names, plus the full snapshot."""
    return {
        "snapshot": engine_snapshot_to_json(engine.snapshot()),
        "accepted": [str(s) for s in engine.accepted_subschedule()],
        "deleted": list(engine.stats.deleted_ids),
        "aborted": sorted(engine.aborted),
        "stats": engine.stats.as_dict(),
    }


def _kernel_rows(engine, shards):
    """Closure kernel state (interner layout + hex rows) per shard."""
    graphs = engine.graphs() if shards > 1 else [engine.graph]
    return [graph.kernel.state_dict() for graph in graphs]


def _assert_crash_recovery(
    scheduler, policy, streamer, seed, cut_fraction, shards,
    checkpoint_interval, tear_tail,
):
    stream = list(streamer(_workload(seed)))
    cut = max(0, min(len(stream) - 1, int(len(stream) * cut_fraction)))
    wal_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-crash-")) / "wal"
    try:
        durable = DurableEngine(
            scheduler=scheduler, policy=policy, wal_dir=wal_dir,
            shards=shards, checkpoint_interval=checkpoint_interval,
        )
        for step in stream[:cut]:
            durable.feed(step)
        # Crash: the process dies between two steps — no checkpoint, no
        # truncation (simulate_crash drops the handles and the writer
        # lock exactly as a kill would leave them).  Optionally the
        # crash lands mid-append: a torn record trails the most recent
        # segment.
        durable.simulate_crash()
        torn_appended = 0
        if tear_tail:
            # The segment of the current epoch may not exist yet (a crash
            # landing exactly on a checkpoint boundary truncated them all).
            segments = sorted(
                (wal_dir / "segments").iterdir(),
                key=lambda p: p.stat().st_mtime,
            )
            if segments:
                with open(segments[-1], "a", encoding="utf-8") as handle:
                    handle.write('{"format":1,"seq":424242,"step":{"ki')
                torn_appended = 1
        recovered = recover(wal_dir)
        assert recovered.recovery_info.torn_records_dropped == torn_appended
        for step in stream[cut:]:
            recovered.feed(step)

        oracle = build_engine(
            None, shards=shards, scheduler=scheduler, policy=policy
        )
        for step in stream:
            oracle.feed(step)

        inner = recovered.engine
        assert _kernel_rows(inner, shards) == _kernel_rows(oracle, shards), (
            f"{scheduler}/{policy} K={shards} cut={cut}: kernel rows diverged"
        )
        assert _fingerprint(inner) == _fingerprint(oracle), (
            f"{scheduler}/{policy} K={shards} cut={cut} "
            f"interval={checkpoint_interval}: recovery diverged"
        )
        recovered.close()
    finally:
        shutil.rmtree(wal_dir.parent, ignore_errors=True)


class TestCrashRecoveryAllSchedulers:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize(
        "scheduler,policy,streamer",
        CASES,
        ids=[f"{s}-{p}" for s, p, _ in CASES],
    )
    def test_mid_stream_crash(self, scheduler, policy, streamer, shards):
        _assert_crash_recovery(
            scheduler, policy, streamer, seed=13, cut_fraction=0.6,
            shards=shards, checkpoint_interval=16, tear_tail=False,
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize(
        "scheduler,policy,streamer",
        CASES,
        ids=[f"{s}-{p}" for s, p, _ in CASES],
    )
    def test_mid_stream_crash_with_torn_tail(
        self, scheduler, policy, streamer, shards
    ):
        _assert_crash_recovery(
            scheduler, policy, streamer, seed=21, cut_fraction=0.45,
            shards=shards, checkpoint_interval=16, tear_tail=True,
        )

    @pytest.mark.parametrize(
        "cut_fraction", [0.0, 0.02, 0.99],
        ids=["before-first-step", "before-first-checkpoint", "at-last-step"],
    )
    def test_boundary_cut_points(self, cut_fraction):
        _assert_crash_recovery(
            "conflict-graph", "eager-c1", basic_stream, seed=5,
            cut_fraction=cut_fraction, shards=4, checkpoint_interval=16,
            tear_tail=False,
        )


class TestCrashRecoveryHypothesis:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        cut_fraction=st.floats(min_value=0.0, max_value=1.0),
        shards=st.sampled_from(SHARD_COUNTS),
        case=st.sampled_from(range(len(CASES))),
        checkpoint_interval=st.sampled_from([0, 8, 64]),
        tear_tail=st.booleans(),
    )
    def test_randomized_crash_point(
        self, seed, cut_fraction, shards, case, checkpoint_interval, tear_tail
    ):
        """Kill the durable engine between two arbitrary steps; recovery
        must be byte-identical to the uninterrupted oracle."""
        scheduler, policy, streamer = CASES[case]
        _assert_crash_recovery(
            scheduler, policy, streamer, seed, cut_fraction, shards,
            checkpoint_interval, tear_tail,
        )

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest
from hypothesis import strategies as st

from repro.core.reduced_graph import ReducedGraph
from repro.model.status import AccessMode, TxnState
from repro.model.steps import Begin, Read, Step, Write
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.workloads.traces import example1_graph

# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def fig1_graph() -> ReducedGraph:
    """The Example 1 / Fig. 1 conflict graph (T1 active; T2, T3 done)."""
    return example1_graph()


@pytest.fixture
def empty_graph() -> ReducedGraph:
    return ReducedGraph()


# ---------------------------------------------------------------------------
# Programmatic graph builder (for condition unit tests)
# ---------------------------------------------------------------------------


def build_graph(
    nodes: dict,
    arcs: List[Tuple[str, str]],
    accesses: List[Tuple[str, str, AccessMode]],
    futures: Optional[dict] = None,
    reads_from: Optional[List[Tuple[str, str]]] = None,
) -> ReducedGraph:
    """Construct a ReducedGraph directly.

    ``nodes`` maps txn id -> TxnState (or "A"/"F"/"C" letters);
    ``accesses`` lists (txn, entity, mode); ``futures`` maps txn ->
    {entity: mode} declared-future dicts; ``reads_from`` lists
    (reader, writer) dependencies.
    """
    letter_states = {
        "A": TxnState.ACTIVE,
        "F": TxnState.FINISHED,
        "C": TxnState.COMMITTED,
    }
    graph = ReducedGraph()
    futures = futures or {}
    for txn, state in nodes.items():
        resolved = letter_states.get(state, state)
        graph.add_transaction(txn, resolved, declared=futures.get(txn))
    for tail, head in arcs:
        graph.add_arc(tail, head)
    for txn, entity, mode in accesses:
        graph.record_access(txn, entity, mode)
    for reader, writer in reads_from or []:
        graph.info(reader).reads_from.add(writer)
    return graph


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

ENTITY_POOL = ["x", "y", "z", "w"]
TXN_POOL = [f"T{i}" for i in range(1, 7)]


@st.composite
def basic_step_streams(
    draw,
    max_txns: int = 4,
    max_entities: int = 3,
    max_steps: int = 14,
) -> List[Step]:
    """A protocol-respecting random basic-model step stream.

    Transactions BEGIN, read entities, and complete with a single final
    write (possibly empty).  Hypothesis controls every choice, so failures
    shrink to minimal streams.
    """
    entities = ENTITY_POOL[:max_entities]
    steps: List[Step] = []
    next_txn = 0
    active: List[str] = []
    n_steps = draw(st.integers(min_value=1, max_value=max_steps))
    for _ in range(n_steps):
        choices = []
        if next_txn < max_txns:
            choices.append("begin")
        if active:
            choices.extend(["read", "write"])
        if not choices:
            break
        action = draw(st.sampled_from(choices))
        if action == "begin":
            txn = TXN_POOL[next_txn]
            next_txn += 1
            active.append(txn)
            steps.append(Begin(txn))
        elif action == "read":
            txn = draw(st.sampled_from(active))
            entity = draw(st.sampled_from(entities))
            steps.append(Read(txn, entity))
        else:
            txn = draw(st.sampled_from(active))
            size = draw(st.integers(min_value=0, max_value=min(2, len(entities))))
            written = draw(
                st.lists(
                    st.sampled_from(entities),
                    min_size=size,
                    max_size=size,
                    unique=True,
                )
            )
            steps.append(Write(txn, frozenset(written)))
            active.remove(txn)
    return steps


def graph_from_stream(steps: List[Step]) -> ReducedGraph:
    """Feed a stream to a fresh conflict scheduler; return its graph."""
    scheduler = ConflictGraphScheduler()
    scheduler.feed_many(steps)
    return scheduler.graph


@st.composite
def multiwrite_step_streams(
    draw,
    max_txns: int = 4,
    max_entities: int = 3,
    max_steps: int = 16,
) -> List[Step]:
    """A protocol-respecting random multiwrite-model step stream."""
    from repro.model.steps import Finish, WriteItem

    entities = ENTITY_POOL[:max_entities]
    steps: List[Step] = []
    next_txn = 0
    active: List[str] = []
    n_steps = draw(st.integers(min_value=1, max_value=max_steps))
    for _ in range(n_steps):
        choices = []
        if next_txn < max_txns:
            choices.append("begin")
        if active:
            choices.extend(["read", "write", "finish"])
        if not choices:
            break
        action = draw(st.sampled_from(choices))
        if action == "begin":
            txn = TXN_POOL[next_txn]
            next_txn += 1
            active.append(txn)
            steps.append(Begin(txn))
        elif action == "finish":
            txn = draw(st.sampled_from(active))
            steps.append(Finish(txn))
            active.remove(txn)
        else:
            txn = draw(st.sampled_from(active))
            entity = draw(st.sampled_from(entities))
            if action == "read":
                steps.append(Read(txn, entity))
            else:
                steps.append(WriteItem(txn, entity))
    return steps


@st.composite
def predeclared_step_streams(
    draw,
    max_txns: int = 4,
    max_entities: int = 4,
    max_steps: int = 18,
) -> List[Step]:
    """A protocol-respecting random predeclared step stream.

    Each transaction declares 1-3 distinct (entity, mode) accesses at
    BEGIN, then executes them in a drawn order, then finishes.  The drawn
    interleaving is arbitrary; the scheduler may delay steps.
    """
    from repro.model.status import AccessMode
    from repro.model.steps import BeginDeclared, Finish, WriteItem

    entities = ENTITY_POOL[:max_entities]
    steps: List[Step] = []
    next_txn = 0
    # txn -> remaining (entity, mode) ops; None means FINISH already queued.
    remaining: dict = {}
    n_steps = draw(st.integers(min_value=1, max_value=max_steps))
    for _ in range(n_steps):
        choices = []
        if next_txn < max_txns:
            choices.append("begin")
        runnable = [t for t, ops in remaining.items() if ops is not None]
        if runnable:
            choices.append("step")
        if not choices:
            break
        action = draw(st.sampled_from(choices))
        if action == "begin":
            txn = TXN_POOL[next_txn]
            next_txn += 1
            count = draw(st.integers(min_value=1, max_value=min(3, len(entities))))
            chosen = draw(
                st.lists(
                    st.sampled_from(entities),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            ops = []
            declared = {}
            for entity in chosen:
                mode = draw(st.sampled_from([AccessMode.READ, AccessMode.WRITE]))
                ops.append((mode, entity))
                declared[entity] = mode
            remaining[txn] = ops
            steps.append(BeginDeclared(txn, declared))
        else:
            txn = draw(st.sampled_from(runnable))
            ops = remaining[txn]
            if not ops:
                steps.append(Finish(txn))
                remaining[txn] = None
                continue
            index = draw(st.integers(min_value=0, max_value=len(ops) - 1))
            mode, entity = ops.pop(index)
            if mode is AccessMode.WRITE:
                steps.append(WriteItem(txn, entity))
            else:
                steps.append(Read(txn, entity))
    return steps


@st.composite
def conflict_graphs(draw, **kwargs) -> ReducedGraph:
    """Random *reachable* conflict graphs (built by the real scheduler)."""
    steps = draw(basic_step_streams(**kwargs))
    return graph_from_stream(steps)

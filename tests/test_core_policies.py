"""Tests for deletion policies — the Theorem 2 framework.

Each policy's selections must be C2-safe at every invocation (that is the
theorem's characterization of correctness), and the reduced scheduler must
keep accepting exactly CSR schedules.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.runner import run_with_policy
from repro.analysis.serializability import is_conflict_serializable
from repro.core.policies import (
    EagerC1Policy,
    EagerC3Policy,
    EagerC4Policy,
    Lemma1Policy,
    NeverDeletePolicy,
    NoncurrentPolicy,
    OptimalPolicy,
)
from repro.core.set_conditions import can_delete_set
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.scheduler.multiwrite import MultiwriteScheduler
from repro.scheduler.predeclared import PredeclaredScheduler
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

from tests.conftest import basic_step_streams

BASIC_POLICIES = [
    NeverDeletePolicy(),
    Lemma1Policy(),
    NoncurrentPolicy(),
    EagerC1Policy(),
    OptimalPolicy(max_candidates=20),
]


class TestPolicySafetyAudits:
    """Every selection a policy makes must satisfy C2 *at that moment*."""

    @pytest.mark.parametrize(
        "policy", BASIC_POLICIES, ids=lambda p: p.name
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_selection_is_c2_safe_every_step(self, policy, seed):
        config = WorkloadConfig(
            n_transactions=18,
            n_entities=5,
            multiprogramming=4,
            write_fraction=0.5,
            seed=seed,
        )
        scheduler = ConflictGraphScheduler()
        for step in basic_stream(config):
            scheduler.feed(step)
            chosen = policy.select(scheduler)
            assert can_delete_set(scheduler.graph, chosen), (
                f"{policy.name} chose unsafe set {sorted(chosen)}"
            )
            scheduler.delete_transactions(sorted(chosen))

    @pytest.mark.parametrize(
        "policy", BASIC_POLICIES, ids=lambda p: p.name
    )
    def test_accepted_schedule_stays_csr(self, policy):
        config = WorkloadConfig(
            n_transactions=25, n_entities=5, multiprogramming=5, seed=11
        )
        metrics = run_with_policy(
            ConflictGraphScheduler(), basic_stream(config), policy, audit_csr=True
        )
        assert metrics.accepted_steps > 0


class TestPolicyOrdering:
    """More aggressive policies retain no more than weaker ones."""

    def test_retention_hierarchy(self):
        config = WorkloadConfig(
            n_transactions=30, n_entities=6, multiprogramming=4, seed=5
        )
        peaks = {}
        for policy in BASIC_POLICIES:
            metrics = run_with_policy(
                ConflictGraphScheduler(), basic_stream(config), policy
            )
            peaks[policy.name] = metrics.peak_retained_completed
        assert peaks["eager-c1"] <= peaks["noncurrent"] <= peaks["never"]
        assert peaks["eager-c1"] <= peaks["lemma1"] <= peaks["never"]
        assert peaks["optimal"] <= peaks["never"]

    def test_never_policy_retains_all_completed(self):
        config = WorkloadConfig(n_transactions=15, n_entities=6, seed=3)
        scheduler = ConflictGraphScheduler()
        metrics = run_with_policy(
            scheduler, basic_stream(config), NeverDeletePolicy()
        )
        assert metrics.deleted_transactions == 0
        completed = len(scheduler.graph.completed_transactions())
        aborted = len(scheduler.aborted)
        assert completed + aborted == 15


class TestReducedVsFullSchedulerEquivalence:
    """Theorem 2's 'if' direction, observed: with a safe policy, the
    reduced scheduler makes identical decisions to the full one."""

    @pytest.mark.parametrize("policy_factory", [EagerC1Policy, NoncurrentPolicy,
                                                Lemma1Policy])
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_decision_streams_identical(self, policy_factory, seed):
        config = WorkloadConfig(
            n_transactions=20,
            n_entities=4,
            multiprogramming=4,
            write_fraction=0.6,
            seed=seed,
        )
        full = ConflictGraphScheduler()
        reduced = ConflictGraphScheduler()
        policy = policy_factory()
        for step in basic_stream(config):
            full_result = full.feed(step)
            reduced_result = reduced.feed(step)
            assert full_result.decision is reduced_result.decision, (
                f"divergence at {step} under {policy.name}"
            )
            policy.apply(reduced)


class TestModelSpecificPolicies:
    def test_eager_c4_on_predeclared_stream(self):
        config = WorkloadConfig(
            n_transactions=15, n_entities=6, multiprogramming=3, seed=2
        )
        metrics = run_with_policy(
            PredeclaredScheduler(),
            predeclared_stream(config),
            EagerC4Policy(),
            audit_csr=True,
        )
        assert metrics.deleted_transactions > 0

    def test_eager_c3_on_multiwrite_stream(self):
        config = WorkloadConfig(
            n_transactions=12, n_entities=5, multiprogramming=3, seed=2
        )
        metrics = run_with_policy(
            MultiwriteScheduler(),
            multiwrite_stream(config),
            EagerC3Policy(max_actives=10),
            audit_csr=True,
        )
        assert metrics.deleted_transactions > 0

    def test_policies_expose_names(self):
        names = {policy.name for policy in BASIC_POLICIES}
        assert names == {"never", "lemma1", "noncurrent", "eager-c1", "optimal"}

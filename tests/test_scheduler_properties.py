"""Cross-scheduler property suite (hypothesis).

The universal invariants of the paper's §2/§4/§5, checked on arbitrary
generated streams:

* every scheduler's accepted subschedule is conflict serializable;
* the online conflict graph equals the offline conflict graph of the
  accepted subschedule (for the basic scheduler without deletions);
* the maintained transitive closure never drifts;
* the predeclared scheduler records an arc for every pair of conflicting
  executed steps, in execution order, and never aborts;
* the multiwrite scheduler's reads-from bookkeeping matches an offline
  reconstruction.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.analysis.serializability import (
    conflict_graph_of,
    is_conflict_serializable,
)
from repro.model.schedule import Schedule
from repro.model.status import AccessMode
from repro.model.steps import Read, Write, WriteItem
from repro.scheduler.certifier import Certifier
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.scheduler.events import Decision
from repro.scheduler.locking import StrictTwoPhaseLocking
from repro.scheduler.multiwrite import MultiwriteScheduler
from repro.scheduler.predeclared import PredeclaredScheduler

from tests.conftest import (
    basic_step_streams,
    multiwrite_step_streams,
    predeclared_step_streams,
)


class TestBasicSchedulerProperties:
    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=80, deadline=None)
    def test_accepted_subschedule_always_csr(self, steps):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(steps)
        assert is_conflict_serializable(scheduler.accepted_subschedule())

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=80, deadline=None)
    def test_online_graph_matches_offline(self, steps):
        """CG(s) built by Rules 1-3 == conflict graph of the accepted
        subschedule built from first principles."""
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(steps)
        online = scheduler.graph
        offline = conflict_graph_of(scheduler.accepted_subschedule())
        assert online.nodes() == offline.nodes()
        assert set(online.arcs()) == set(offline.arcs())

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=60, deadline=None)
    def test_closure_never_drifts(self, steps):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(steps)
        scheduler.graph._closure.check_invariants()

    @given(basic_step_streams(max_txns=4, max_entities=3, max_steps=14))
    @settings(max_examples=60, deadline=None)
    def test_access_payloads_match_accepted_steps(self, steps):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(steps)
        accepted = scheduler.accepted_subschedule()
        expected: dict = {}
        for step in accepted:
            if isinstance(step, Read):
                expected.setdefault(step.txn, {}).setdefault(
                    step.entity, AccessMode.READ
                )
            elif isinstance(step, Write):
                for entity in step.entities:
                    expected.setdefault(step.txn, {})[entity] = AccessMode.WRITE
        for txn in scheduler.graph:
            assert scheduler.graph.info(txn).accesses == expected.get(txn, {})


class TestCertifierProperties:
    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=60, deadline=None)
    def test_certifier_accepts_only_csr(self, steps):
        scheduler = Certifier()
        scheduler.feed_many(steps)
        assert is_conflict_serializable(scheduler.accepted_subschedule())

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=60, deadline=None)
    def test_certifier_graph_acyclic_and_completed_only(self, steps):
        from repro.graphs.cycles import has_cycle

        scheduler = Certifier()
        scheduler.feed_many(steps)
        assert not has_cycle(scheduler.graph.as_digraph())
        assert scheduler.graph.completed_transactions() == scheduler.graph.nodes()


class TestLockingProperties:
    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=60, deadline=None)
    def test_locking_executions_csr(self, steps):
        scheduler = StrictTwoPhaseLocking()
        scheduler.feed_many(steps)
        assert is_conflict_serializable(scheduler.accepted_subschedule())

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=60, deadline=None)
    def test_committed_transactions_hold_no_locks(self, steps):
        scheduler = StrictTwoPhaseLocking()
        scheduler.feed_many(steps)
        for txn in scheduler.committed_transactions():
            assert not scheduler.locks_held(txn)

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=60, deadline=None)
    def test_no_phantom_waiters(self, steps):
        """Nobody waits for a transaction that no longer holds locks."""
        scheduler = StrictTwoPhaseLocking()
        scheduler.feed_many(steps)
        for txn, parked in scheduler.waiting_transactions().items():
            assert parked
            head = parked[0]
            blockers = scheduler._blockers(head)
            for blocker in blockers:
                assert scheduler.locks_held(blocker)


class TestMultiwriteProperties:
    @given(multiwrite_step_streams(max_txns=5, max_entities=3, max_steps=20))
    @settings(max_examples=80, deadline=None)
    def test_accepted_subschedule_csr(self, steps):
        scheduler = MultiwriteScheduler()
        scheduler.feed_many(steps)
        assert is_conflict_serializable(scheduler.accepted_subschedule())

    @given(multiwrite_step_streams(max_txns=5, max_entities=3, max_steps=20))
    @settings(max_examples=60, deadline=None)
    def test_committed_depend_only_on_committed(self, steps):
        scheduler = MultiwriteScheduler()
        scheduler.feed_many(steps)
        graph = scheduler.graph
        for txn in graph.committed_transactions():
            for dep in graph.info(txn).reads_from:
                if dep in graph:
                    assert graph.state(dep).value == "committed"

    @given(multiwrite_step_streams(max_txns=5, max_entities=3, max_steps=20))
    @settings(max_examples=60, deadline=None)
    def test_reads_from_matches_offline_reconstruction(self, steps):
        scheduler = MultiwriteScheduler()
        results = scheduler.feed_many(steps)
        graph = scheduler.graph
        # Offline: replay accepted steps; a read of x depends on the last
        # accepted writer of x iff that writer had not yet committed.
        committed_at: dict = {}
        last_writer: dict = {}
        expected: dict = {}
        commit_time: dict = {}
        for index, result in enumerate(results):
            if result.decision is not Decision.ACCEPTED:
                # Aborts can retract earlier writes; rebuild conservatively
                # by skipping streams with aborts (covered elsewhere).
                if result.decision is Decision.REJECTED:
                    return
                continue
            step = result.step
            for txn in result.committed:
                commit_time[txn] = index
            if isinstance(step, WriteItem):
                last_writer[step.entity] = (step.txn, index)
            elif isinstance(step, Read):
                writer = last_writer.get(step.entity)
                if writer is not None and writer[0] != step.txn:
                    writer_txn, _ = writer
                    committed_before = (
                        writer_txn in commit_time
                        and commit_time[writer_txn] <= index
                    )
                    if not committed_before:
                        expected.setdefault(step.txn, set()).add(writer_txn)
        for txn in graph:
            assert graph.info(txn).reads_from == expected.get(txn, set())


class TestPredeclaredProperties:
    @given(predeclared_step_streams(max_txns=5, max_entities=4, max_steps=22))
    @settings(max_examples=80, deadline=None)
    def test_never_rejects(self, steps):
        scheduler = PredeclaredScheduler()
        results = scheduler.feed_many(steps)
        assert all(r.decision is not Decision.REJECTED for r in results)
        assert not scheduler.aborted

    @given(predeclared_step_streams(max_txns=5, max_entities=4, max_steps=22))
    @settings(max_examples=80, deadline=None)
    def test_executed_schedule_csr(self, steps):
        scheduler = PredeclaredScheduler()
        scheduler.feed_many(steps)
        assert is_conflict_serializable(scheduler.executed_schedule())

    @given(predeclared_step_streams(max_txns=5, max_entities=4, max_steps=22))
    @settings(max_examples=80, deadline=None)
    def test_every_executed_conflict_pair_has_ordered_arc(self, steps):
        scheduler = PredeclaredScheduler()
        scheduler.feed_many(steps)
        offline = conflict_graph_of(scheduler.executed_schedule())
        online = scheduler.graph
        for tail, head in offline.arcs():
            assert online.has_arc(tail, head), (
                f"missing arc {tail}->{head}; executed="
                f"{scheduler.executed_schedule()}"
            )

    @given(predeclared_step_streams(max_txns=5, max_entities=4, max_steps=22))
    @settings(max_examples=60, deadline=None)
    def test_graph_always_acyclic(self, steps):
        from repro.graphs.cycles import has_cycle

        scheduler = PredeclaredScheduler()
        scheduler.feed_many(steps)
        assert not has_cycle(scheduler.graph.as_digraph())

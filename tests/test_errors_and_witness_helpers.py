"""Coverage for the exception hierarchy and witness-construction helpers."""

from __future__ import annotations

import pytest

from repro.core.reduced_graph import ReducedGraph
from repro.core.witnesses import (
    Divergence,
    _fresh_txn_id,
    _fresh_universe,
)
from repro.errors import (
    ArcNotFoundError,
    CycleError,
    DeletionError,
    GraphError,
    InvalidStepError,
    ModelError,
    NodeNotFoundError,
    NotCompletedError,
    ReductionError,
    ReproError,
    SchedulerError,
    TransactionStateError,
    UnknownEntityError,
    UnknownTransactionError,
    UnsafeDeletionError,
    WorkloadError,
)
from repro.model.status import AccessMode, TxnState
from repro.model.steps import Read
from repro.scheduler.events import Decision


class TestErrorHierarchy:
    ALL = [
        ModelError("m"),
        UnknownTransactionError("t"),
        UnknownEntityError("e"),
        InvalidStepError("s"),
        TransactionStateError("ts"),
        SchedulerError("sch"),
        GraphError("g"),
        NodeNotFoundError("n"),
        ArcNotFoundError("a", "b"),
        CycleError("c"),
        DeletionError("d"),
        UnsafeDeletionError("t", "because"),
        NotCompletedError("t", TxnState.ACTIVE),
        WorkloadError("w"),
        ReductionError("r"),
    ]

    def test_everything_is_a_repro_error(self):
        for exc in self.ALL:
            assert isinstance(exc, ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert isinstance(UnknownTransactionError("t"), KeyError)
        assert isinstance(NodeNotFoundError("n"), KeyError)
        assert isinstance(ArcNotFoundError("a", "b"), KeyError)

    def test_messages_carry_context(self):
        exc = UnsafeDeletionError("T9", "demo")
        assert "T9" in str(exc) and "demo" in str(exc)
        assert exc.txn_id == "T9"
        arc = ArcNotFoundError("a", "b")
        assert arc.tail == "a" and arc.head == "b"
        nce = NotCompletedError("T1", TxnState.ACTIVE)
        assert nce.state is TxnState.ACTIVE

    def test_not_completed_is_both_families(self):
        exc = NotCompletedError("T1", TxnState.ACTIVE)
        assert isinstance(exc, DeletionError)
        assert isinstance(exc, TransactionStateError)

    def test_single_except_clause_catches_all(self):
        caught = 0
        for exc in self.ALL:
            try:
                raise exc
            except ReproError:
                caught += 1
        assert caught == len(self.ALL)


class TestWitnessHelpers:
    def test_fresh_universe_collects_accesses_and_futures(self):
        graph = ReducedGraph()
        graph.add_transaction("T1", declared={"fut": AccessMode.READ})
        graph.record_access("T1", "x", AccessMode.WRITE)
        universe = _fresh_universe(graph)
        assert "x" in universe and "fut" in universe
        assert universe.fresh() not in {"x", "fut"}

    def test_fresh_txn_id_avoids_everything(self):
        graph = ReducedGraph()
        graph.add_transaction("_W0", TxnState.COMMITTED)
        graph.add_transaction("_W1", TxnState.COMMITTED)
        graph.delete("_W1")  # deleted ids must also be avoided
        fresh = _fresh_txn_id(graph)
        assert fresh not in {"_W0", "_W1"}
        assert fresh.startswith("_W")

    def test_divergence_rendering(self):
        div = Divergence(Read("T1", "x"), Decision.REJECTED, Decision.ACCEPTED)
        text = str(div)
        assert "rx(T1)" in text
        assert "rejected" in text and "accepted" in text

"""Tests for offline serializability, metrics, runner, and reporting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.analysis.metrics import RunMetrics, Sample
from repro.analysis.report import ascii_table, format_series, rows_from_summaries
from repro.analysis.runner import run_with_policy
from repro.analysis.serializability import (
    conflict_graph_of,
    equivalent_serial_order,
    is_conflict_serializable,
    is_view_serializable,
)
from repro.core.policies import EagerC1Policy
from repro.errors import ModelError, SchedulerError
from repro.model.schedule import Schedule
from repro.model.steps import Begin, Finish, Read, Write, WriteItem
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.workloads.generator import WorkloadConfig, basic_stream

from tests.conftest import basic_step_streams


def _csr_schedule() -> Schedule:
    return Schedule(
        (
            Begin("T1"), Read("T1", "x"), Write("T1", frozenset({"y"})),
            Begin("T2"), Read("T2", "y"), Write("T2", frozenset()),
        )
    )


def _non_csr_schedule() -> Schedule:
    return Schedule(
        (
            Begin("T1"), Read("T1", "x"),
            Begin("T2"), Read("T2", "x"),
            Write("T2", frozenset({"x"})),   # T1 -> T2
            Write("T1", frozenset({"x"})),   # T2 -> T1
        )
    )


class TestConflictGraphOf:
    def test_arcs_follow_order(self):
        graph = conflict_graph_of(_csr_schedule())
        assert graph.has_arc("T1", "T2")
        assert not graph.has_arc("T2", "T1")

    def test_detects_cycle(self):
        assert not is_conflict_serializable(_non_csr_schedule())
        assert is_conflict_serializable(_csr_schedule())

    def test_serial_order_extraction(self):
        order = equivalent_serial_order(_csr_schedule())
        assert order is not None
        assert order.index("T1") < order.index("T2")
        assert equivalent_serial_order(_non_csr_schedule()) is None

    def test_multiwrite_steps_supported(self):
        sched = Schedule(
            (
                Begin("A"), WriteItem("A", "x"),
                Begin("B"), Read("B", "x"), Finish("B"), Finish("A"),
            )
        )
        graph = conflict_graph_of(sched)
        assert graph.has_arc("A", "B")

    def test_serial_schedules_always_csr(self):
        sched = Schedule(
            (
                Begin("T1"), Read("T1", "x"), Write("T1", frozenset({"x"})),
                Begin("T2"), Read("T2", "x"), Write("T2", frozenset({"x"})),
            )
        )
        assert is_conflict_serializable(sched)


class TestViewSerializability:
    def test_csr_implies_vsr(self):
        assert is_view_serializable(_csr_schedule())

    def test_non_serializable(self):
        assert not is_view_serializable(_non_csr_schedule())

    def test_guard(self):
        steps = []
        for i in range(9):
            steps += [Begin(f"T{i}"), Write(f"T{i}", frozenset())]
        with pytest.raises(ModelError):
            is_view_serializable(Schedule(tuple(steps)))

    @given(basic_step_streams(max_txns=4, max_entities=2, max_steps=10))
    @settings(max_examples=40, deadline=None)
    def test_csr_subset_of_vsr(self, steps):
        sched = Schedule(tuple(steps))
        if is_conflict_serializable(sched):
            assert is_view_serializable(sched)


class TestRunner:
    def test_metrics_counts(self):
        config = WorkloadConfig(n_transactions=10, n_entities=5, seed=1)
        metrics = run_with_policy(
            ConflictGraphScheduler(), basic_stream(config), EagerC1Policy()
        )
        total = (
            metrics.accepted_steps
            + metrics.rejected_steps
            + metrics.delayed_steps
            + metrics.ignored_steps
        )
        assert total == len(basic_stream(config))
        assert metrics.policy == "eager-c1"
        assert metrics.samples

    def test_audit_flags_bad_scheduler(self):
        class BrokenScheduler(ConflictGraphScheduler):
            def _process(self, step):
                # Accept everything: no concurrency control at all.
                from repro.model.status import AccessMode, TxnState
                from repro.model.steps import Begin as B, Read as R, Write as W
                from repro.scheduler.events import Decision, StepResult

                if isinstance(step, B):
                    self.graph.add_transaction(step.txn)
                elif isinstance(step, R):
                    self.graph.record_access(step.txn, step.entity, AccessMode.READ)
                elif isinstance(step, W):
                    for entity in step.entities:
                        self.graph.record_access(step.txn, entity, AccessMode.WRITE)
                    self.graph.set_state(step.txn, TxnState.COMMITTED)
                return StepResult(step, Decision.ACCEPTED)

        with pytest.raises(SchedulerError):
            run_with_policy(
                BrokenScheduler(), _non_csr_schedule(), audit_csr=True
            )

    def test_sampling_interval(self):
        config = WorkloadConfig(n_transactions=10, n_entities=5, seed=1)
        stream = basic_stream(config)
        metrics = run_with_policy(
            ConflictGraphScheduler(), stream, sample_every=5
        )
        assert len(metrics.samples) == (len(stream) + 4) // 5


class TestMetrics:
    def test_summary_and_series(self):
        metrics = RunMetrics(policy="p", scheduler="s")
        metrics.record_sample(Sample(0, 3, 1, 2, 2))
        metrics.record_sample(Sample(1, 5, 2, 4, 3))
        assert metrics.peak_graph_size == 5
        assert metrics.final_graph_size == 5
        assert metrics.mean_graph_size == 4.0
        assert metrics.series("retained_completed") == [1, 2]
        summary = metrics.summary()
        assert summary["policy"] == "p" and summary["peak_graph"] == 5

    def test_empty_metrics(self):
        metrics = RunMetrics()
        assert metrics.peak_graph_size == 0
        assert metrics.mean_graph_size == 0.0


class TestReport:
    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "v"], [["aa", 1], ["b", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_ascii_table_title(self):
        assert ascii_table(["a"], [[1]], title="T").splitlines()[0] == "T"

    def test_format_series(self):
        rendering = format_series("g", [0, 1, 2, 3])
        assert rendering.startswith("g: [")
        assert "max=3" in rendering

    def test_format_series_empty(self):
        assert "(empty)" in format_series("g", [])

    def test_format_series_downsamples(self):
        rendering = format_series("g", list(range(500)), width=40)
        body = rendering.split("[")[1].split("]")[0]
        assert len(body) == 40

    def test_rows_from_summaries(self):
        rows = rows_from_summaries(
            [{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"]
        )
        assert rows == [[1, 2], [3, ""]]

"""Integration: the paper's worked examples through the full pipeline.

These tests are the executable version of the paper's own prose — every
claim §3-§5 makes about Examples 1 and 2 and the surrounding discussion,
checked end-to-end through scheduler construction, condition evaluation,
witness construction, and lockstep replay.
"""

from __future__ import annotations

import pytest

from repro.analysis.serializability import is_conflict_serializable
from repro.core.conditions import can_delete, has_no_active_predecessors
from repro.core.oracle import bounded_safety_check
from repro.core.optimal import maximum_safe_deletion_set
from repro.core.predeclared_conditions import can_delete_predeclared
from repro.core.set_conditions import can_delete_set
from repro.core.witnesses import (
    basic_witness_continuation,
    check_divergence,
    check_predeclared_divergence,
    predeclared_witness_continuation,
)
from repro.model.steps import Begin, Read, Write
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.workloads.traces import (
    example1_graph,
    example1_schedule,
    example2_graph,
    example2_steps,
)


class TestExample1Pipeline:
    def test_schedule_accepted_fully(self):
        scheduler = ConflictGraphScheduler()
        results = scheduler.feed_many(example1_schedule())
        assert all(r.accepted for r in results)

    def test_graph_is_fig1(self):
        graph = example1_graph()
        assert set(graph.arcs()) == {("T1", "T2"), ("T1", "T3"), ("T2", "T3")}
        assert graph.active_transactions() == frozenset({"T1"})

    def test_paper_claims(self):
        graph = example1_graph()
        # "T2 has an active predecessor (namely, T1)."
        assert not has_no_active_predecessors(graph, "T2")
        # "However ... T2 can be safely deleted."
        assert can_delete(graph, "T2")
        # "only one of them (either one) can be safely deleted."
        assert can_delete(graph, "T3")
        assert not can_delete_set(graph, {"T2", "T3"})
        assert len(maximum_safe_deletion_set(graph)) == 1

    def test_unsafe_double_delete_has_a_real_counterexample(self):
        graph = example1_graph()
        counterexample = bounded_safety_check(graph, ["T2", "T3"], max_depth=3)
        assert counterexample is not None
        divergence = check_divergence(graph, ["T2", "T3"], counterexample)
        assert divergence is not None

    def test_reduced_scheduler_still_correct_after_safe_delete(self):
        """Delete T2 (safe), continue with an adversarial continuation,
        and check the accepted subschedule stays CSR."""
        graph = example1_graph()
        reduced = graph.reduced_by(["T2"])
        scheduler = ConflictGraphScheduler(reduced.copy())
        # T1 tries to close a cycle through the deleted region.
        continuation = [Read("T1", "x"), Write("T1", frozenset({"x"}))]
        scheduler.feed_many(continuation)
        full_input = list(example1_schedule()) + continuation
        accepted_ids = {"T1", "T2", "T3"} - scheduler.aborted
        accepted = [s for s in full_input if s.txn in accepted_ids]
        assert is_conflict_serializable(accepted)

    def test_wrong_second_delete_would_break_csr(self):
        """The flip side: simulate the *unsafe* double deletion and show
        the reduced scheduler accepts a non-CSR schedule — the exact
        failure Theorem 2 predicts for incorrect policies."""
        graph = example1_graph()
        reduced = graph.reduced_by(["T2", "T3"])
        scheduler = ConflictGraphScheduler(reduced.copy())
        continuation = [Read("T1", "x"), Write("T1", frozenset({"x"}))]
        results = scheduler.feed_many(continuation)
        assert all(r.accepted for r in results)  # nothing stops T1 now
        full_input = list(example1_schedule()) + continuation
        accepted_ids = {"T1", "T2", "T3"} - scheduler.aborted
        accepted = [s for s in full_input if s.txn in accepted_ids]
        assert not is_conflict_serializable(accepted)


class TestExample2Pipeline:
    def test_schedule_runs_without_delays(self):
        scheduler, graph = example2_graph()
        assert not scheduler.waiting_transactions()
        assert graph.active_transactions() == frozenset({"A"})

    def test_paper_claims(self):
        _, graph = example2_graph()
        assert not can_delete_predeclared(graph, "B")
        assert can_delete_predeclared(graph, "C")

    def test_b_witness_reproduces_the_papers_gadget(self):
        _, graph = example2_graph()
        continuation = predeclared_witness_continuation(graph, "B")
        # The paper: "the only way A can acquire a new immediate
        # predecessor D is if D writes y before the read step of A" — the
        # witness transaction must write y.
        from repro.model.steps import WriteItem

        y_writes = [
            s for s in continuation if isinstance(s, WriteItem) and s.entity == "y"
        ]
        assert y_writes
        divergence = check_predeclared_divergence(graph, ["B"], continuation)
        assert divergence is not None

    def test_deleting_c_never_diverges_on_the_gadget(self):
        _, graph = example2_graph()
        continuation = predeclared_witness_continuation(graph, "B")
        assert check_predeclared_divergence(graph, ["C"], continuation) is None


class TestSection1LockingClaim:
    def test_locking_retains_nothing_after_commit(self):
        from repro.scheduler.locking import StrictTwoPhaseLocking

        scheduler = StrictTwoPhaseLocking()
        scheduler.feed_many(
            [
                Begin("T1"),
                Read("T1", "x"),
                Begin("T2"),
                Read("T2", "y"),
                Write("T1", frozenset({"y"})),  # waits for T2
                Write("T2", frozenset()),  # commits, releases
            ]
        )
        assert scheduler.retained_transactions() == frozenset()

    def test_conflict_scheduler_must_retain_t2(self):
        """The §1 contrast: the conflict scheduler cannot close T2 of
        Example 1 at commit time (deleting both T2 and T3 is unsafe)."""
        graph = example1_graph()
        assert not can_delete_set(graph, {"T2", "T3"})

"""Tests for C2 (Theorem 4): set deletions and the sequential equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import can_delete
from repro.core.set_conditions import c2_violations, can_delete_set
from repro.model.status import AccessMode as M

from tests.conftest import basic_step_streams, build_graph, graph_from_stream


class TestExample1Sets:
    def test_singletons_safe(self, fig1_graph):
        assert can_delete_set(fig1_graph, {"T2"})
        assert can_delete_set(fig1_graph, {"T3"})

    def test_pair_unsafe(self, fig1_graph):
        assert not can_delete_set(fig1_graph, {"T2", "T3"})

    def test_empty_set_always_safe(self, fig1_graph):
        assert can_delete_set(fig1_graph, set())

    def test_violation_blames_a_member(self, fig1_graph):
        violations = c2_violations(fig1_graph, {"T2", "T3"})
        assert violations
        assert all(v.member in {"T2", "T3"} for v in violations)
        assert all(v.active_pred == "T1" for v in violations)


class TestWitnessExclusion:
    def test_members_cannot_witness_each_other(self):
        # Two candidates each with the *other* as sole witness.
        graph = build_graph(
            {"A": "A", "P": "C", "Q": "C"},
            [("A", "P"), ("A", "Q")],
            [("P", "x", M.WRITE), ("Q", "x", M.WRITE)],
        )
        assert can_delete_set(graph, {"P"})
        assert can_delete_set(graph, {"Q"})
        assert not can_delete_set(graph, {"P", "Q"})

    def test_outside_witness_unlocks_pair(self):
        graph = build_graph(
            {"A": "A", "P": "C", "Q": "C", "W": "C"},
            [("A", "P"), ("A", "Q"), ("A", "W")],
            [
                ("P", "x", M.WRITE),
                ("Q", "x", M.WRITE),
                ("W", "x", M.WRITE),
            ],
        )
        assert can_delete_set(graph, {"P", "Q"})
        assert not can_delete_set(graph, {"P", "Q", "W"})


class TestSequentialEquivalence:
    """Theorem 4's proof: N is safe iff deleting members one at a time is
    C1-safe at every intermediate graph, in any order."""

    @given(basic_step_streams(max_txns=4, max_entities=3, max_steps=12),
           st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_c2_iff_every_order_sequentially_safe(self, steps, rng):
        graph = graph_from_stream(steps)
        completed = sorted(graph.completed_transactions())
        if not completed:
            return
        candidates = [t for t in completed if rng.random() < 0.6]
        if not candidates:
            return
        set_safe = can_delete_set(graph, candidates)
        order = list(candidates)
        rng.shuffle(order)
        sequential_safe = True
        trial = graph.copy()
        for txn in order:
            if not can_delete(trial, txn):
                sequential_safe = False
                break
            trial.delete(txn)
        assert set_safe == sequential_safe

    @given(basic_step_streams(max_txns=4, max_entities=3, max_steps=12))
    @settings(max_examples=40, deadline=None)
    def test_c2_monotone_under_subset(self, steps):
        """Any subset of a C2-safe set is C2-safe (fewer demands, more
        witnesses)."""
        graph = graph_from_stream(steps)
        completed = sorted(graph.completed_transactions())
        if len(completed) < 2:
            return
        if can_delete_set(graph, completed):
            for txn in completed:
                smaller = [t for t in completed if t != txn]
                assert can_delete_set(graph, smaller)

    def test_order_does_not_matter_for_safety(self, fig1_graph):
        # {T2} then {T3} fails in both orders (the second deletion is the
        # unsafe one regardless of which goes first).
        for first, second in (("T2", "T3"), ("T3", "T2")):
            trial = fig1_graph.copy()
            assert can_delete(trial, first)
            trial.delete(first)
            assert not can_delete(trial, second)

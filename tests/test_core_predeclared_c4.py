"""Tests for condition C4 (predeclared model, Theorem 7 + Example 2)."""

from __future__ import annotations

import pytest

from repro.core.predeclared_conditions import (
    behaves_as_completed,
    c4_violations,
    can_delete_predeclared,
)
from repro.core.witnesses import (
    check_predeclared_divergence,
    predeclared_witness_continuation,
)
from repro.errors import DeletionError
from repro.model.status import AccessMode as M
from repro.workloads.traces import example2_graph

from tests.conftest import build_graph


class TestExample2:
    """The paper's Fig. 4 analysis, via the real predeclared scheduler."""

    def test_graph_shape(self):
        _, graph = example2_graph()
        assert set(graph.arcs()) == {("A", "B"), ("A", "C")}
        assert graph.info("A").future == {"y": M.READ}

    def test_b_not_deletable(self):
        _, graph = example2_graph()
        assert not can_delete_predeclared(graph, "B")

    def test_c_deletable(self):
        _, graph = example2_graph()
        assert can_delete_predeclared(graph, "C")

    def test_clause2_reasoning(self):
        """B covers A's future read of y, so A behaves as completed when C
        is the candidate — but not when B is (B is excluded as witness)."""
        _, graph = example2_graph()
        assert behaves_as_completed(graph, "A", exclude="C")
        assert not behaves_as_completed(graph, "A", exclude="B")

    def test_violation_names_the_uncovered_future(self):
        _, graph = example2_graph()
        violations = c4_violations(graph, "B")
        assert violations
        assert violations[0].active_pred == "A"
        assert violations[0].uncovered_future == "y"

    def test_witness_continuation_diverges_for_b(self):
        _, graph = example2_graph()
        continuation = predeclared_witness_continuation(graph, "B")
        divergence = check_predeclared_divergence(graph, ["B"], continuation)
        assert divergence is not None

    def test_witness_refused_for_c(self):
        _, graph = example2_graph()
        with pytest.raises(DeletionError):
            predeclared_witness_continuation(graph, "C")

    def test_c_deletion_keeps_schedulers_in_step(self):
        """Delete C, then run the Theorem 7 gadget for B's violation shape
        anyway — original and reduced must agree on every step since C's
        deletion is safe."""
        _, graph = example2_graph()
        continuation = predeclared_witness_continuation(
            graph, "B"
        )  # a stressful continuation
        divergence = check_predeclared_divergence(graph, ["C"], continuation)
        assert divergence is None


class TestC4Clauses:
    def test_clause1_witness_suffices(self):
        # Tj -> Ti, Tj -> Tk; Tk accessed x as strongly: clause 1.
        graph = build_graph(
            {"Tj": "A", "Ti": "C", "Tk": "C"},
            [("Tj", "Ti"), ("Tj", "Tk")],
            [("Ti", "x", M.WRITE), ("Tk", "x", M.WRITE)],
            futures={"Tj": {"q": M.WRITE}},
        )
        assert can_delete_predeclared(graph, "Ti")

    def test_clause1_respects_strength(self):
        graph = build_graph(
            {"Tj": "A", "Ti": "C", "Tk": "C"},
            [("Tj", "Ti"), ("Tj", "Tk")],
            [("Ti", "x", M.WRITE), ("Tk", "x", M.READ)],
            futures={"Tj": {"q": M.WRITE}},
        )
        assert not can_delete_predeclared(graph, "Ti")

    def test_clause2_strength_read_future_covered_by_read(self):
        # Tj will READ y; successor Tl READ y already: covered.
        graph = build_graph(
            {"Tj": "A", "Ti": "C", "Tl": "C"},
            [("Tj", "Ti"), ("Tj", "Tl")],
            [("Ti", "x", M.WRITE), ("Tl", "y", M.READ)],
            futures={"Tj": {"y": M.READ}},
        )
        assert can_delete_predeclared(graph, "Ti")

    def test_clause2_strength_write_future_needs_write(self):
        # Tj will WRITE y; successor only READ y: NOT covered.
        graph = build_graph(
            {"Tj": "A", "Ti": "C", "Tl": "C"},
            [("Tj", "Ti"), ("Tj", "Tl")],
            [("Ti", "x", M.WRITE), ("Tl", "y", M.READ)],
            futures={"Tj": {"y": M.WRITE}},
        )
        assert not can_delete_predeclared(graph, "Ti")

    def test_clause2_write_future_covered_by_write(self):
        graph = build_graph(
            {"Tj": "A", "Ti": "C", "Tl": "C"},
            [("Tj", "Ti"), ("Tj", "Tl")],
            [("Ti", "x", M.WRITE), ("Tl", "y", M.WRITE)],
            futures={"Tj": {"y": M.WRITE}},
        )
        assert can_delete_predeclared(graph, "Ti")

    def test_candidate_excluded_as_clause2_coverer(self):
        # Only Ti itself covers Tj's future: clause 2 must fail.
        graph = build_graph(
            {"Tj": "A", "Ti": "C"},
            [("Tj", "Ti")],
            [("Ti", "x", M.WRITE), ("Ti", "y", M.READ)],
            futures={"Tj": {"y": M.READ}},
        )
        assert not can_delete_predeclared(graph, "Ti")

    def test_predecessors_are_plain_not_tight(self):
        # Tj -> Mid(active) -> Ti: in C1 Mid breaks tightness; C4 uses
        # plain predecessors so Tj still matters.
        graph = build_graph(
            {"Tj": "A", "Mid": "A", "Ti": "C"},
            [("Tj", "Mid"), ("Mid", "Ti")],
            [("Ti", "x", M.WRITE)],
            futures={"Tj": {"q": M.WRITE}, "Mid": {"r": M.WRITE}},
        )
        violations = c4_violations(graph, "Ti")
        assert {v.active_pred for v in violations} == {"Tj", "Mid"}

    def test_no_active_predecessors(self):
        graph = build_graph(
            {"Ti": "C", "Later": "A"},
            [("Ti", "Later")],
            [("Ti", "x", M.WRITE)],
            futures={"Later": {"x": M.WRITE}},
        )
        assert can_delete_predeclared(graph, "Ti")

    def test_completed_predecessor_irrelevant(self):
        graph = build_graph(
            {"Done": "C", "Ti": "C"},
            [("Done", "Ti")],
            [("Ti", "x", M.WRITE)],
        )
        assert can_delete_predeclared(graph, "Ti")


class TestC4Clause1Refinement:
    """Tj's own executed access of x witnesses for Ti (DESIGN.md §3).

    Regression for the case our lockstep search discovered: the literal
    paper condition pins Ti, yet no continuation can distinguish the
    reduced from the original scheduler.
    """

    def _graph(self):
        # Tj (active) wrote x and will write q; Ti (committed) wrote x.
        # No successor of Tj other than Ti accessed x — the literal clause
        # 1 fails — but Tj's own write of x is the permanent shield.
        return build_graph(
            {"Tj": "A", "Ti": "C"},
            [("Tj", "Ti")],
            [("Tj", "x", M.WRITE), ("Ti", "x", M.WRITE)],
            futures={"Tj": {"q": M.WRITE}},
        )

    def test_refined_c4_accepts(self):
        assert can_delete_predeclared(self._graph(), "Ti")

    def test_no_witness_continuation_exists(self):
        with pytest.raises(DeletionError):
            predeclared_witness_continuation(self._graph(), "Ti")

    def test_lockstep_agreement_on_the_papers_gadget_shape(self):
        """Drive the very continuation the paper's gadget would build
        (fresh Tn reading x then the uncovered q) — both schedulers must
        behave identically after deleting Ti."""
        from repro.model.steps import BeginDeclared, Read, WriteItem

        graph = self._graph()
        continuation = [
            BeginDeclared("_Tn", {"x": M.READ, "q": M.READ}),
            Read("_Tn", "x"),
            Read("_Tn", "q"),
        ]
        assert check_predeclared_divergence(graph, ["Ti"], continuation) is None

    def test_weaker_own_access_does_not_witness(self):
        # Tj only READ x while Ti WROTE it: the shield is too weak; a new
        # reader of x conflicts with Ti but not with Tj.
        graph = build_graph(
            {"Tj": "A", "Ti": "C"},
            [("Tj", "Ti")],
            [("Tj", "x", M.READ), ("Ti", "x", M.WRITE)],
            futures={"Tj": {"q": M.WRITE}},
        )
        assert not can_delete_predeclared(graph, "Ti")
        continuation = predeclared_witness_continuation(graph, "Ti")
        assert check_predeclared_divergence(graph, ["Ti"], continuation) is not None

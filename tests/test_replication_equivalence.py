"""Replication equivalence: a follower is recovery, streamed.

The replication gate (CI refuses to pass if this module is skipped, like
the kernel/sharding/crash/chaos equivalence suites).  Two layers:

**Tail equivalence** — a :class:`~repro.replication.WalFollower` tails a
durable primary while a (hypothesis-chosen) workload is fed in ragged
slices, across epoch rolls, checkpoint adoptions, crash-vs-clean
shutdown, and an optional forged torn tail.  After the final poll the
follower's engine must be **byte-identical** to a ``recover()`` of the
same ``wal_dir`` — for all five schedulers and ``shards ∈ {1, 4}``.
The follower never takes the writer lock, so whatever it serves is, by
this property, exactly what a failover would recover.

**Serving failover** — the same machinery under
:class:`~repro.server.ReproServer`: replica tenants answer guarded reads
with honest lag stamps, writes are redirected with structured
``not_primary`` errors, a primary whose recovery budget is exhausted is
auto-promoted (supervisor-driven) or failed over client-side
(:meth:`~repro.client.AsyncServingClient.feed_resumable` with
``failover_to=``) — with **zero acknowledged-write loss**, proven by
recovering the directory after the dust settles and comparing against
an uninterrupted oracle.  The satellite retry-hint clamp is pinned here
too: a server-supplied ``retry_after`` beyond the client's backoff cap
must not park the client.

No pytest-asyncio in the image: server tests run ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import pathlib
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import AsyncServingClient
from repro.durability import DurableEngine, recover
from repro.engine import build_engine
from repro.errors import (
    NotPrimaryError,
    ReplicaLaggingError,
    TenantSaturatedError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.io import engine_snapshot_to_json
from repro.replication import WalFollower, read_promotions
from repro.server import ReproServer
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

#: (scheduler, canonical policy, stream factory) — all five schedulers.
CASES = [
    ("conflict-graph", "eager-c1", basic_stream),
    ("certifier", "noncurrent", basic_stream),
    ("strict-2pl", "lemma1", basic_stream),
    ("multiwrite", "eager-c3", multiwrite_stream),
    ("predeclared", "eager-c4", predeclared_stream),
]

SHARD_COUNTS = [1, 4]

TORN_LINE = '{"format":1,"seq":424242,"step":{"ki\n'


def _workload(seed: int) -> WorkloadConfig:
    return WorkloadConfig(
        n_transactions=40,
        n_entities=14,
        multiprogramming=5,
        write_fraction=0.5,
        max_accesses=3,
        zipf_s=0.4,
        seed=seed,
        partitions=4,
        cross_fraction=0.25,
    )


def _fingerprint(engine):
    return {
        "snapshot": engine_snapshot_to_json(engine.snapshot()),
        "accepted": [str(s) for s in engine.accepted_subschedule()],
        "deleted": list(engine.stats.deleted_ids),
        "aborted": sorted(engine.aborted),
    }


def _recovery_fingerprint(wal_dir: pathlib.Path, scratch: pathlib.Path):
    """What ``recover()`` yields — run on a copy, so its lock and its
    torn-tail repair never perturb the directory the follower tails."""
    copy = scratch / "recovery-oracle"
    if copy.exists():
        shutil.rmtree(copy)
    shutil.copytree(wal_dir, copy)
    (copy / "LOCK").unlink(missing_ok=True)
    recovered = recover(copy)
    try:
        return _fingerprint(recovered.engine)
    finally:
        recovered.close()


# ---------------------------------------------------------------------------
# Tail equivalence (the tentpole property)
# ---------------------------------------------------------------------------


class TestFollowerMatchesRecovery:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("scheduler,policy,streamer", CASES)
    @settings(max_examples=4, deadline=None)
    @given(data=st.data())
    def test_follower_snapshot_is_recovery_snapshot(
        self, scheduler, policy, streamer, shards, data
    ):
        seed = data.draw(st.integers(min_value=0, max_value=2**16),
                         label="workload seed")
        chunk = data.draw(st.integers(min_value=3, max_value=17),
                          label="feed slice")
        interval = data.draw(st.sampled_from([4, 8, 16, 64]),
                             label="checkpoint interval")
        poll_every = data.draw(st.integers(min_value=1, max_value=4),
                               label="poll cadence")
        crash = data.draw(st.booleans(), label="crash (vs clean close)")
        tear = data.draw(st.booleans(), label="forge torn tail")
        stream = list(streamer(_workload(seed)))
        with tempfile.TemporaryDirectory() as tmp:
            scratch = pathlib.Path(tmp)
            wal = scratch / "wal"
            durable = DurableEngine(
                scheduler=scheduler, policy=policy, wal_dir=wal,
                shards=shards, checkpoint_interval=interval,
            )
            follower = WalFollower(wal)
            for index, start in enumerate(range(0, len(stream), chunk)):
                durable.feed_many(stream[start : start + chunk])
                if index % poll_every == 0:
                    follower.poll()
            if crash:
                durable.simulate_crash()
            else:
                durable.close()
            if tear:
                segments = sorted((wal / "segments").iterdir())
                if segments:
                    with open(segments[-1], "a", encoding="utf-8") as h:
                        h.write(TORN_LINE)
            follower.poll()
            oracle = _recovery_fingerprint(wal, scratch)
            assert _fingerprint(follower.engine) == oracle
            assert follower.wal_seq == durable.seq
            follower.close()

    def test_follower_matches_oracle_of_the_stream(self):
        """Transitively with the crash-equivalence suite: the follower
        equals recovery equals an uninterrupted in-memory run."""
        stream = list(basic_stream(_workload(5)))
        with tempfile.TemporaryDirectory() as tmp:
            wal = pathlib.Path(tmp) / "wal"
            durable = DurableEngine(
                scheduler="conflict-graph", policy="eager-c1", wal_dir=wal,
                checkpoint_interval=16,
            )
            follower = WalFollower(wal)
            durable.feed_many(stream)
            durable.close()
            follower.poll()
            oracle = build_engine(
                None, scheduler="conflict-graph", policy="eager-c1"
            )
            for step in stream:
                oracle.feed(step)
            assert _fingerprint(follower.engine) == _fingerprint(oracle)
            follower.close()


# ---------------------------------------------------------------------------
# Serving failover
# ---------------------------------------------------------------------------


async def _wait_for(predicate, *, timeout: float = 10.0, pause: float = 0.01):
    deadline = asyncio.get_event_loop().time() + timeout
    while True:
        value = await predicate()
        if value:
            return value
        if asyncio.get_event_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(pause)


class TestServingReplicas:
    def test_replica_reads_stamps_guards_and_redirects(self, tmp_path):
        async def _run() -> None:
            wal = str(tmp_path / "wal")
            server = ReproServer(replica_poll_interval=0.01)
            host, port = await server.start()
            stream = list(basic_stream(_workload(7)))
            try:
                async with await AsyncServingClient.connect(
                    host, port, timeout=10.0
                ) as c:
                    await c.create_tenant(
                        "p", scheduler="certifier", policy="noncurrent",
                        wal_dir=wal, checkpoint_interval=16,
                    )
                    await c.create_tenant("r", replica_of=wal)
                    # Writes are redirected, with the primary's wal_dir.
                    with pytest.raises(NotPrimaryError) as err:
                        await c.feed("r", stream[0])
                    assert err.value.primary_wal_dir.endswith("wal")
                    totals = await c.feed_all("p", stream)
                    primary_seq = (await c.tenant_info("p"))["wal_seq"]

                    async def _caught_up():
                        info = await c.tenant_info("r")
                        return info["wal_seq"] == primary_seq
                    await _wait_for(_caught_up)
                    # A guarded read on a caught-up replica passes and
                    # carries the per-response lag stamp.
                    response = await c.request(
                        {"op": "query", "tenant": "r", "what": "deleted",
                         "max_lag": 0}, idempotent=True,
                    )
                    assert response["replica"]["lag_seq"] == 0
                    assert response["replica"]["wal_seq"] == primary_seq
                    assert "lag_seconds" in response["replica"]
                    # The replica serves the same audit answers.
                    deleted = await c.query("r", "deleted")
                    assert deleted == await c.query("p", "deleted")
                    if deleted:
                        audit = await c.audit("r", deleted[0], max_lag=5)
                        assert audit["status"] == "deleted"
                    # An impossible bound raises the structured error.
                    info = await c.tenant_info("r")
                    assert info["role"] == "replica"
                    assert totals["count"] == len(stream)
            finally:
                await server.close()

        asyncio.run(_run())

    def test_lag_guard_rejects_stale_replica(self, tmp_path):
        """A replica whose tail is stopped must refuse guarded reads
        (structured ``replica_lagging``) instead of serving stale data."""
        async def _run() -> None:
            wal = str(tmp_path / "wal")
            # Slow poll: the replica stays behind long enough to observe.
            server = ReproServer(replica_poll_interval=30.0)
            host, port = await server.start()
            stream = list(basic_stream(_workload(9)))
            try:
                async with await AsyncServingClient.connect(
                    host, port, timeout=10.0
                ) as c:
                    await c.create_tenant(
                        "p", scheduler="conflict-graph", policy="eager-c1",
                        wal_dir=wal, checkpoint_interval=1_000_000,
                    )
                    await c.create_tenant("r", replica_of=wal)
                    await c.feed_all("p", stream)
                    with pytest.raises(ReplicaLaggingError) as err:
                        await c.query("r", "deleted", max_lag=0)
                    assert err.value.lag_seq > 0
                    assert err.value.max_lag == 0
                    assert err.value.retry_after > 0
                    # Unguarded reads still answer (stale but honest —
                    # the stamp says how far behind).
                    response = await c.request(
                        {"op": "query", "tenant": "r", "what": "deleted"},
                        idempotent=True,
                    )
                    assert response["replica"]["lag_seq"] > 0
            finally:
                await server.close()

        asyncio.run(_run())

    def test_auto_promotion_zero_write_loss(self, tmp_path):
        """Primary exhausts its recovery budget mid-stream; the
        supervisor promotes the freshest replica; every acknowledged
        write is on the promoted tenant; reads never stopped."""
        async def _run() -> None:
            wal = str(tmp_path / "wal")
            plan = FaultPlan(
                [FaultSpec(site="server.worker", at=3, kind="crash")]
                + [FaultSpec(site="recover.start", at=i, kind="io_error")
                   for i in range(1, 9)]
            )
            server = ReproServer(
                fault_plan=plan, recover_backoff=0.005,
                recover_backoff_cap=0.02, recover_max_attempts=3,
                replica_poll_interval=0.01, auto_promote=True,
            )
            host, port = await server.start()
            stream = list(basic_stream(_workload(21)))
            try:
                async with await AsyncServingClient.connect(
                    host, port, timeout=10.0
                ) as c:
                    await c.create_tenant(
                        "p", scheduler="certifier", policy="noncurrent",
                        wal_dir=wal, checkpoint_interval=16,
                    )
                    await c.create_tenant("r", replica_of=wal)
                    acknowledged = 0
                    for start in range(0, len(stream), 8):
                        batch = stream[start : start + 8]
                        try:
                            await c.feed_batch("p", batch)
                            acknowledged += len(batch)
                        except Exception:
                            break
                        # Read availability throughout the write stream.
                        assert isinstance(
                            await c.query("r", "live"), list
                        )

                    async def _promoted():
                        info = await c.tenant_info("r")
                        return info["role"] == "primary"
                    await _wait_for(_promoted)
                    info = await c.tenant_info("r")
                    assert info["state"] == "serving"
                    # Zero acknowledged-write loss: every batch the
                    # server acknowledged is on the promoted tenant.
                    assert info["wal_seq"] >= acknowledged
                    # The promoted tenant is writable.
                    rest = stream[info["wal_seq"]:]
                    if rest:
                        await c.feed_all("r", rest)
                    # And audits a deleted transaction like a primary.
                    deleted = await c.query("r", "deleted")
                    if deleted:
                        audit = await c.audit("r", deleted[0])
                        assert audit["status"] == "deleted"
                    assert read_promotions(wal), "promotion not audited"
            finally:
                await server.close()

        asyncio.run(_run())

    def test_client_failover_keeps_stream_and_state(self, tmp_path):
        """feed_resumable(failover_to=...) completes the stream across
        primary death, and the surviving directory equals an
        uninterrupted oracle — the E20 drill, in-process."""
        async def _run() -> None:
            wal = tmp_path / "wal"
            plan = FaultPlan(
                [FaultSpec(site="server.worker", at=3, kind="crash")]
                + [FaultSpec(site="recover.start", at=i, kind="io_error")
                   for i in range(1, 9)]
            )
            server = ReproServer(
                fault_plan=plan, recover_backoff=0.005,
                recover_backoff_cap=0.02, recover_max_attempts=3,
                replica_poll_interval=0.01, auto_promote=False,
            )
            host, port = await server.start()
            stream = list(basic_stream(_workload(23)))
            try:
                async with await AsyncServingClient.connect(
                    host, port, timeout=10.0
                ) as c:
                    await c.create_tenant(
                        "p", scheduler="certifier", policy="noncurrent",
                        wal_dir=str(wal), checkpoint_interval=16,
                    )
                    await c.create_tenant("r", replica_of=str(wal))
                    totals = await c.feed_resumable(
                        "p", stream, chunk=8, backoff=0.005,
                        backoff_cap=0.05, max_retries=32, failover_to="r",
                    )
                    assert totals["failovers"] == 1
                    assert totals["count"] + totals["resynced"] == len(
                        stream
                    )
                    info = await c.tenant_info("r")
                    assert info["role"] == "primary"
                    assert info["wal_seq"] == len(stream)
                    await c.close_tenant("r")
            finally:
                await server.close()
            check = recover(wal)
            oracle = build_engine(
                None, scheduler="certifier", policy="noncurrent"
            )
            for step in stream:
                oracle.feed(step)
            assert _fingerprint(check.engine) == _fingerprint(oracle)
            check.close()

        asyncio.run(_run())

    def test_promote_against_live_primary_is_refused(self, tmp_path):
        async def _run_checked() -> None:
            wal = str(tmp_path / "wal")
            server = ReproServer(replica_poll_interval=0.01)
            host, port = await server.start()
            try:
                async with await AsyncServingClient.connect(
                    host, port, timeout=10.0
                ) as c:
                    await c.create_tenant(
                        "p", scheduler="conflict-graph", policy="eager-c1",
                        wal_dir=wal,
                    )
                    await c.create_tenant("r", replica_of=wal)
                    from repro.errors import RequestRejectedError
                    with pytest.raises(RequestRejectedError) as err:
                        await c.promote("r")
                    assert err.value.code == "primary_alive"
                    # The refused follower keeps tailing.
                    info = await c.tenant_info("r")
                    assert info["role"] == "replica"
                    assert info["state"] == "serving"
                    # Promoting a primary is a no-op, not an error.
                    response = await c.promote("p")
                    assert response["already_primary"]
            finally:
                await server.close()

        asyncio.run(_run_checked())


# ---------------------------------------------------------------------------
# Client backoff-hint clamp (satellite)
# ---------------------------------------------------------------------------


class TestRetryHintClamp:
    def test_pause_is_clamped_at_the_cap(self):
        client = AsyncServingClient.__new__(AsyncServingClient)
        AsyncServingClient.__init__(
            client, reader=None, writer=None, host=None, port=None
        )
        # A hostile hint (hours) cannot exceed cap * max jitter.
        pause = client._retry_pause(3600.0, 0.01, 0.5)
        assert pause <= 0.5 * 1.5
        assert client.clamped_hints == 1
        # A polite hint below the cap is honored, not clamped.
        pause = client._retry_pause(0.02, 0.01, 0.5)
        assert pause >= 0.02 * 0.5
        assert client.clamped_hints == 1

    def test_feed_all_counts_clamps_and_does_not_park(self, tmp_path):
        async def _run() -> None:
            server = ReproServer()
            host, port = await server.start()
            stream = list(basic_stream(_workload(3)))[:20]
            try:
                async with await AsyncServingClient.connect(
                    host, port, timeout=10.0
                ) as c:
                    await c.create_tenant(
                        "t", scheduler="conflict-graph", policy="eager-c1"
                    )
                    real = c.feed_batch
                    tripped = {"n": 0}

                    async def _saturated_once(tenant, steps, **kwargs):
                        if tripped["n"] == 0:
                            tripped["n"] += 1
                            raise TenantSaturatedError(
                                "busy", 3600.0  # an hour-long "hint"
                            )
                        return await real(tenant, steps, **kwargs)

                    c.feed_batch = _saturated_once
                    start = asyncio.get_event_loop().time()
                    totals = await c.feed_all(
                        "t", stream, backoff=0.01, backoff_cap=0.05
                    )
                    elapsed = asyncio.get_event_loop().time() - start
                    assert totals["retries"] == 1
                    assert totals["clamped"] == 1
                    assert totals["count"] == len(stream)
                    # The hour-long hint was cut to the 50ms cap.
                    assert elapsed < 5.0
            finally:
                await server.close()

        asyncio.run(_run())

"""Row-for-row equivalence of the bitset kernel across all five schedulers.

Every scheduler variant drives its :class:`ReducedGraph` (and therefore the
:class:`BitClosureGraph` kernel) through its own mix of node insertions,
conflict arcs, aborts, and policy deletions.  At spread-out checkpoints we
rebuild an **independent** set-based closure from the live graph's plain
arcs (:func:`repro.core.reference.reference_closure_of` — propagated
through the reference kernel's own ``add_arc``, nothing copied from the bit
rows) and compare every row: descendants, ancestors, successors,
predecessors.  The state/entity masks are cross-checked against the
payloads, and engine checkpoint/restore is asserted bit-exact under id
recycling.

CI runs this module with a skip detector: these tests are the safety net
under the kernel swap and must never be silently skipped.
"""

from __future__ import annotations

import pytest

from repro.core.reference import reference_closure_of
from repro.engine import Engine
from repro.io import graph_from_dict, graph_to_dict
from repro.model.status import AccessMode, TxnState
from repro.registry import create_policy, create_scheduler
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

#: All five scheduler variants with a compatible stream and deletion
#: policy.  strict-2pl is the graph-less baseline: its reduced graph must
#: stay empty, which the test asserts explicitly.
SCHEDULER_CASES = [
    ("conflict-graph", basic_stream, "eager-c1"),
    ("certifier", basic_stream, "noncurrent"),
    ("strict-2pl", basic_stream, None),
    ("multiwrite", multiwrite_stream, "eager-c3"),
    ("predeclared", predeclared_stream, "eager-c4"),
]

SEEDS = [5, 23, 77]


def _config(seed: int) -> WorkloadConfig:
    return WorkloadConfig(
        n_transactions=36,
        n_entities=8,
        multiprogramming=5,
        write_fraction=0.5,
        max_accesses=3,
        zipf_s=0.6,
        seed=seed,
    )


def _checkpoints(n_steps: int):
    return {n_steps // 5, n_steps // 2, (4 * n_steps) // 5, n_steps - 1}


def _policy_for(name):
    if name is None:
        return None
    if name == "eager-c3":
        return create_policy(name, max_actives=8)
    return create_policy(name)


def _assert_rows_match_reference(graph) -> None:
    """Every closure row of the bit kernel == the independently propagated
    reference kernel's row (and the masks == the payload-derived sets)."""
    mirror = reference_closure_of(graph)
    assert graph.nodes() == mirror.nodes()
    assert sorted(graph.arcs()) == sorted(mirror.arcs())
    for txn in graph.nodes():
        assert graph.descendants(txn) == mirror.descendants(txn), txn
        assert graph.ancestors(txn) == mirror.ancestors(txn), txn
        assert graph.successors(txn) == mirror.successors(txn), txn
        assert graph.predecessors(txn) == mirror.predecessors(txn), txn
    # State masks agree with the payloads.
    info = graph.info
    assert set(graph.unmask(graph.active_mask)) == {
        t for t in graph if info(t).state.is_active
    }
    assert set(graph.unmask(graph.completed_mask)) == {
        t for t in graph if info(t).state.is_completed
    }
    assert set(graph.unmask(graph.committed_mask)) == {
        t for t in graph if info(t).state is TxnState.COMMITTED
    }
    # Entity masks agree with the payloads, at both strengths.
    entities = {e for t in graph for e in info(t).accesses}
    for entity in entities:
        for mode in (AccessMode.READ, AccessMode.WRITE):
            assert set(graph.unmask(graph.accessors_mask(entity, mode))) == {
                t for t in graph if info(t).accesses_at_least(entity, mode)
            }
    graph.check_invariants()


class TestRowEquivalenceAcrossSchedulers:
    @pytest.mark.parametrize("scheduler_name,stream_factory,policy_name", SCHEDULER_CASES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_rows_match_reference_kernel(
        self, scheduler_name, stream_factory, policy_name, seed
    ):
        scheduler = create_scheduler(scheduler_name)
        policy = _policy_for(policy_name)
        stream = list(stream_factory(_config(seed)))
        probes = _checkpoints(len(stream))
        deleted_total = 0
        for index, step in enumerate(stream):
            scheduler.feed(step)
            if policy is not None and index % 7 == 6:
                selected = policy.select(scheduler)
                scheduler.delete_transactions(sorted(selected))
                deleted_total += len(selected)
            if index in probes:
                _assert_rows_match_reference(scheduler.graph)
        _assert_rows_match_reference(scheduler.graph)
        if scheduler_name == "strict-2pl":
            assert len(scheduler.graph) == 0  # the graph-less baseline
        elif policy is not None:
            # The interleaved sweeps actually exercised contraction.
            assert deleted_total + len(scheduler.graph.deleted_transactions()) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rows_survive_abort_heavy_runs(self, seed):
        """Multiwrite cascading aborts exercise remove_node_abort's masked
        row recomputation hardest."""
        scheduler = create_scheduler("multiwrite")
        stream = list(multiwrite_stream(_config(seed)))
        aborted_seen = 0
        for index, step in enumerate(stream):
            result = scheduler.feed(step)
            if result.aborted:
                aborted_seen += len(result.aborted)
                _assert_rows_match_reference(scheduler.graph)
        # The workload is conflict-heavy enough to abort somebody.
        assert aborted_seen >= 0


class TestRecyclingAndSnapshots:
    """Satellite: interleaved feed/delete/abort/checkpoint/restore cycles
    must not grow the interner unboundedly and must round-trip snapshots
    bit-exactly."""

    def test_interner_capacity_bounded_under_deletion(self):
        engine = Engine(
            scheduler="conflict-graph", policy="eager-c1", sweep_interval=4
        )
        stream = basic_stream(
            WorkloadConfig(
                n_transactions=300,
                n_entities=10,
                multiprogramming=6,
                write_fraction=0.5,
                max_accesses=3,
                zipf_s=0.5,
                seed=13,
            )
        )
        engine.feed_batch(stream)
        peak_live = engine.stats.peak_graph_size
        capacity = engine.graph.kernel.interner.capacity
        # Hundreds of transactions flowed through; the id space is bounded
        # by the peak number of simultaneously live nodes (stats measure
        # the peak *after* each step's sweep, so allow the nodes one sweep
        # interval can add before the next sweep prunes them).
        assert engine.stats.deletions > 100
        assert capacity <= peak_live + engine.sweep_interval
        assert capacity < 60
        engine.graph.check_invariants()

    @pytest.mark.parametrize(
        "scheduler_name,stream_factory,policy_name",
        [case for case in SCHEDULER_CASES if case[2] is not None],
    )
    def test_checkpoint_restore_round_trips_bit_exactly(
        self, scheduler_name, stream_factory, policy_name
    ):
        engine = Engine(
            scheduler=scheduler_name,
            policy=policy_name,
            sweep_interval=5,
            policy_options={"max_actives": 8} if policy_name == "eager-c3" else {},
        )
        stream = list(stream_factory(_config(11)))
        half = len(stream) // 2
        engine.feed_batch(stream[:half])
        snapshot = engine.snapshot()
        restored = Engine.restore(snapshot)
        # Bit-exact: the restored kernel state (id layout, free list, hex
        # rows) equals the live one, and a re-snapshot is identical.
        assert (
            restored.graph.kernel.state_dict()
            == engine.graph.kernel.state_dict()
        )
        assert restored.snapshot() == snapshot
        # Continuing both engines over the same suffix stays identical.
        engine.feed_batch(stream[half:])
        restored.feed_batch(stream[half:])
        assert graph_to_dict(restored.graph) == graph_to_dict(engine.graph)
        assert restored.stats.deleted_ids == engine.stats.deleted_ids
        restored.graph.check_invariants()

    def test_graph_payload_round_trips_bit_exactly_after_recycling(self):
        engine = Engine(
            scheduler="conflict-graph", policy="eager-c1", sweep_interval=3
        )
        engine.feed_batch(basic_stream(_config(41)))
        graph = engine.graph
        assert graph.deleted_transactions()  # ids actually recycled
        payload = graph_to_dict(graph)
        restored = graph_from_dict(payload)
        assert graph_to_dict(restored) == payload
        assert restored.kernel.state_dict() == graph.kernel.state_dict()
        for txn in graph:
            assert restored.id_of(txn) == graph.id_of(txn)
        restored.check_invariants()

    def test_legacy_format1_snapshot_still_loads(self):
        """Versioning: pre-kernel (format 1) graph payloads keep loading
        via the arc-replay path."""
        engine = Engine(
            scheduler="conflict-graph", policy="eager-c1", sweep_interval=3
        )
        engine.feed_batch(basic_stream(_config(19)))
        payload = graph_to_dict(engine.graph)
        legacy = {k: v for k, v in payload.items() if k != "closure"}
        legacy["format"] = 1
        restored = graph_from_dict(legacy)
        fresh = graph_to_dict(restored)
        for key in ("nodes", "arcs", "deleted", "aborted"):
            assert fresh[key] == payload[key]
        restored.check_invariants()

"""The invariant analyzer (:mod:`repro.lint`).

Three layers are pinned here:

* **Per-rule behavior** — every rule fires on a seeded violation compiled
  from a string fixture and stays quiet on the fixed version of the same
  snippet.  Fixtures are self-contained strings (not repo files), so a
  rule regression is diagnosable from this file alone.
* **The machinery** — pragma suppression (same-line and line-above),
  line-shift-stable fingerprints, the baseline store's accept/partition
  cycle, the JSON report schema (including the fingerprint recomputation
  that makes hand-edited reports fail), and the CLI's did-you-mean /
  exit-code contract.
* **The live tree** — the shipped source must lint clean (zero
  non-baseline findings).  This is the CI gate: a refactor that breaks a
  standing contract fails here, with the finding text as the diagnosis.
  CI must-run guard: `lint_self_run` below may never be skipped.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import textwrap

import pytest

from repro.lint import (
    Finding,
    all_rules,
    load_baseline,
    partition_findings,
    report_payload,
    run_rules,
    validate_payload,
    write_baseline,
)
from repro.lint.cli import add_lint_arguments, default_root, run as lint_run
from repro.lint.framework import SourceUnit
from repro.lint.rules import (
    BlockingInAsyncRule,
    DeterminismRule,
    EpochBumpRule,
    FaultSiteCoverageRule,
    HygieneArtifactsRule,
    RawSyscallRule,
    SnapshotCompletenessRule,
)


def unit(path: str, source: str) -> SourceUnit:
    return SourceUnit(path, textwrap.dedent(source))


def findings_for(rule, *units, root=None):
    run = run_rules(list(units), [rule], root=root)
    return run.findings


# ---------------------------------------------------------------------------
# raw-syscall
# ---------------------------------------------------------------------------


RAW_BAD = """
    import os

    def persist(path, text):
        with open(path, "w") as handle:
            handle.write(text)
            os.fsync(handle.fileno())
        os.replace(path, path + ".pub")
"""

RAW_GOOD = """
    def persist(io, path, text):
        io.write_checkpoint(path, text)
"""


class TestRawSyscall:
    def test_fires_on_raw_calls(self):
        found = findings_for(RawSyscallRule(), unit("durability.py", RAW_BAD))
        assert {f.line for f in found} == {5, 7, 8}
        assert all(f.rule == "raw-syscall" for f in found)
        assert "StorageIO" in found[0].message

    def test_quiet_on_fixed_version(self):
        assert not findings_for(
            RawSyscallRule(), unit("durability.py", RAW_GOOD)
        )

    def test_blessed_files_are_exempt(self):
        assert not findings_for(RawSyscallRule(), unit("faults.py", RAW_BAD))
        assert not findings_for(RawSyscallRule(), unit("io.py", RAW_BAD))

    def test_out_of_scope_files_are_exempt(self):
        assert not findings_for(RawSyscallRule(), unit("engine.py", RAW_BAD))

    def test_method_open_on_path_objects_fires(self):
        source = """
            def tail(path):
                with path.open("rb") as handle:
                    return handle.read()
        """
        found = findings_for(RawSyscallRule(), unit("replication.py", source))
        assert len(found) == 1
        assert "path.open" in found[0].message


# ---------------------------------------------------------------------------
# snapshot-completeness
# ---------------------------------------------------------------------------


SNAP_BAD = """
    class Tracker:
        def __init__(self):
            self.rows = []
            self.count = 0

        def state_dict(self):
            return {"rows": list(self.rows)}
"""

SNAP_GOOD = """
    class Tracker:
        def __init__(self):
            self.rows = []
            self.count = 0

        def state_dict(self):
            return {"rows": list(self.rows), "count": self.count}
"""

SNAP_EPHEMERAL = """
    class Tracker:
        def __init__(self):
            self.rows = []
            self.cache = {}  # derived  # lint: ephemeral

        def state_dict(self):
            return {"rows": list(self.rows)}
"""


class TestSnapshotCompleteness:
    def test_fires_on_missing_field(self):
        found = findings_for(
            SnapshotCompletenessRule(), unit("tracking.py", SNAP_BAD)
        )
        assert len(found) == 1
        assert "self.count" in found[0].message
        assert found[0].scope == "Tracker.__init__"

    def test_quiet_when_serializer_covers_all(self):
        assert not findings_for(
            SnapshotCompletenessRule(), unit("tracking.py", SNAP_GOOD)
        )

    def test_ephemeral_pragma_exempts(self):
        assert not findings_for(
            SnapshotCompletenessRule(), unit("tracking.py", SNAP_EPHEMERAL)
        )

    def test_classes_without_serializer_ignored(self):
        source = """
            class Plain:
                def __init__(self):
                    self.anything = 1
        """
        assert not findings_for(
            SnapshotCompletenessRule(), unit("x.py", source)
        )

    def test_tuple_unpacking_targets_are_collected(self):
        source = """
            class Pair:
                def __init__(self):
                    self.a, self.b = 1, 2

                def state_dict(self):
                    return {"a": self.a}
        """
        found = findings_for(SnapshotCompletenessRule(), unit("x.py", source))
        assert len(found) == 1
        assert "self.b" in found[0].message


# ---------------------------------------------------------------------------
# epoch-bump
# ---------------------------------------------------------------------------


EPOCH_BAD = """
    class ReducedGraph:
        def __init__(self):
            self._info = {}
            self._epoch = 0

        def _bump(self):
            self._epoch += 1

        def delete(self, txn):
            self._info.pop(txn)
"""

EPOCH_GOOD = """
    class ReducedGraph:
        def __init__(self):
            self._info = {}
            self._epoch = 0

        def _bump(self):
            self._epoch += 1

        def delete(self, txn):
            self._info.pop(txn)
            self._bump()
"""

EPOCH_HELPER_COVERED = """
    class ReducedGraph:
        def __init__(self):
            self._info = {}
            self._epoch = 0

        def _bump(self):
            self._epoch += 1

        def _unindex(self, txn):
            self._info.pop(txn)

        def delete(self, txn):
            self._unindex(txn)
            self._bump()
"""


class TestEpochBump:
    def test_fires_on_unbumped_mutation(self):
        found = findings_for(EpochBumpRule(), unit("core/reduced_graph.py",
                                                   EPOCH_BAD))
        assert len(found) == 1
        assert found[0].scope == "ReducedGraph.delete"
        assert "_info" in found[0].message

    def test_quiet_when_bumped(self):
        assert not findings_for(
            EpochBumpRule(), unit("core/reduced_graph.py", EPOCH_GOOD)
        )

    def test_helper_covered_by_bumping_caller(self):
        assert not findings_for(
            EpochBumpRule(), unit("core/reduced_graph.py",
                                  EPOCH_HELPER_COVERED)
        )

    def test_kernel_mutator_calls_require_bump(self):
        source = """
            class ReducedGraph:
                def __init__(self):
                    self._closure = None
                    self._epoch = 0

                def _bump(self):
                    self._epoch += 1

                def add_arc(self, tail, head):
                    self._closure.add_arc(tail, head)
        """
        found = findings_for(EpochBumpRule(),
                             unit("core/reduced_graph.py", source))
        assert len(found) == 1
        assert "_closure.add_arc" in found[0].message

    def test_bitclosure_contract_uses_mutations_counter(self):
        source = """
            class BitClosureGraph:
                def __init__(self):
                    self._succ = []
                    self._mutations = 0

                def add_arc(self, a, b):
                    self._succ.append(b)
        """
        found = findings_for(EpochBumpRule(), unit("graphs/bitclosure.py",
                                                   source))
        assert len(found) == 1
        fixed = """
            class BitClosureGraph:
                def __init__(self):
                    self._succ = []
                    self._mutations = 0

                def add_arc(self, a, b):
                    self._succ.append(b)
                    self._mutations += 1
        """
        assert not findings_for(
            EpochBumpRule(), unit("graphs/bitclosure.py", fixed)
        )

    def test_non_self_receivers_ignored(self):
        source = """
            class ReducedGraph:
                def copy(self):
                    clone = ReducedGraph()
                    clone._info = dict(self._info)
                    return clone
        """
        assert not findings_for(
            EpochBumpRule(), unit("core/reduced_graph.py", source)
        )


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


DET_BAD = """
    import os
    import random
    import time

    def step_id():
        return time.time()

    def jitter():
        return random.random()

    def token():
        return os.urandom(8)
"""

DET_GOOD = """
    import random

    def make_rng(seed):
        return random.Random(seed)
"""


class TestDeterminism:
    def test_fires_on_nondeterminism(self):
        found = findings_for(DeterminismRule(), unit("engine.py", DET_BAD))
        assert {f.scope for f in found} == {"step_id", "jitter", "token"}

    def test_seeded_rng_is_allowed(self):
        assert not findings_for(DeterminismRule(), unit("engine.py",
                                                        DET_GOOD))

    def test_unseeded_rng_constructor_fires(self):
        source = "import random\nrng = random.Random()\n"
        found = findings_for(DeterminismRule(), unit("engine.py", source))
        assert len(found) == 1
        assert "unseeded" in found[0].message

    def test_pragma_suppresses_with_audit_trail(self):
        source = """
            import time

            def stamp():
                return time.time()  # lint: allow(determinism)
        """
        run = run_rules([unit("engine.py", source)], [DeterminismRule()])
        assert not run.findings
        assert len(run.suppressed) == 1

    def test_out_of_scope_files_exempt(self):
        assert not findings_for(DeterminismRule(), unit("server.py",
                                                        DET_BAD))


# ---------------------------------------------------------------------------
# blocking-in-async
# ---------------------------------------------------------------------------


ASYNC_BAD = """
    import time

    async def handler(request):
        time.sleep(0.1)
        return request
"""

ASYNC_GOOD = """
    import asyncio

    async def handler(request):
        await asyncio.sleep(0.1)
        return request
"""


class TestBlockingInAsync:
    def test_fires_inside_async_def(self):
        found = findings_for(BlockingInAsyncRule(), unit("server.py",
                                                         ASYNC_BAD))
        assert len(found) == 1
        assert found[0].scope == "handler"
        assert "asyncio.sleep" in found[0].message

    def test_quiet_on_awaited_sleep(self):
        assert not findings_for(
            BlockingInAsyncRule(), unit("server.py", ASYNC_GOOD)
        )

    def test_sync_functions_unaffected(self):
        source = "import time\n\ndef warmup():\n    time.sleep(1)\n"
        assert not findings_for(
            BlockingInAsyncRule(), unit("server.py", source)
        )

    def test_nested_def_bodies_are_skipped(self):
        source = """
            import time

            async def handler(loop):
                def blocking_work():
                    time.sleep(1)
                return await loop.run_in_executor(None, blocking_work)
        """
        assert not findings_for(
            BlockingInAsyncRule(), unit("server.py", source)
        )

    def test_blocking_open_fires(self):
        source = """
            async def read_config(path):
                with open(path) as handle:
                    return handle.read()
        """
        found = findings_for(BlockingInAsyncRule(), unit("client.py", source))
        assert len(found) == 1


# ---------------------------------------------------------------------------
# fault-site-coverage
# ---------------------------------------------------------------------------


SITES_CATALOG = """
    FAULT_SITES = {
        "wal.append": "fail or tear a WAL append",
        "wal.fsync": "fail the WAL file fsync",
    }
"""


class TestFaultSiteCoverage:
    def test_typo_site_fires(self):
        user = """
            def feed(io):
                io.check("wal.appendd")
                io.check("wal.fsync")
                io.check("wal.append")
        """
        found = findings_for(
            FaultSiteCoverageRule(),
            unit("faults.py", SITES_CATALOG),
            unit("durability.py", user),
        )
        assert len(found) == 1
        assert "wal.appendd" in found[0].message

    def test_unreferenced_catalog_entry_fires(self):
        user = """
            def feed(io):
                io.check("wal.append")
        """
        found = findings_for(
            FaultSiteCoverageRule(),
            unit("faults.py", SITES_CATALOG),
            unit("durability.py", user),
        )
        assert len(found) == 1
        assert found[0].path == "faults.py"
        assert "wal.fsync" in found[0].message

    def test_site_keyword_counts_as_reference(self):
        user = """
            def plan():
                return [FaultSpec(site="wal.fsync"), Check("wal.append")]

            def fire(io):
                io.fire("wal.append")
        """
        assert not findings_for(
            FaultSiteCoverageRule(),
            unit("faults.py", SITES_CATALOG),
            unit("durability.py", user),
        )

    def test_clean_when_catalog_and_refs_agree(self):
        user = """
            def feed(io):
                io.check("wal.append")
                io.check("wal.fsync")
        """
        assert not findings_for(
            FaultSiteCoverageRule(),
            unit("faults.py", SITES_CATALOG),
            unit("durability.py", user),
        )


# ---------------------------------------------------------------------------
# hygiene-artifacts
# ---------------------------------------------------------------------------


class TestHygieneArtifacts:
    def test_tracked_pyc_fires(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            HygieneArtifactsRule, "_tracked",
            staticmethod(lambda root: [
                "src/repro/engine.py",
                "src/repro/workloads/__pycache__/zipf.cpython-311.pyc",
            ]),
        )
        found = findings_for(HygieneArtifactsRule(), root=tmp_path)
        assert len(found) == 1
        assert "__pycache__" in found[0].path

    def test_clean_tree_quiet(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            HygieneArtifactsRule, "_tracked",
            staticmethod(lambda root: ["src/repro/engine.py"]),
        )
        assert not findings_for(HygieneArtifactsRule(), root=tmp_path)

    def test_fail_soft_without_git(self, monkeypatch, tmp_path):
        # Outside a checkout the rule is advisory, never a crash.
        found = findings_for(HygieneArtifactsRule(),
                             root=tmp_path / "not-a-repo")
        assert found == []


# ---------------------------------------------------------------------------
# framework: pragmas, fingerprints, baseline
# ---------------------------------------------------------------------------


class TestFramework:
    def test_pragma_on_line_above_covers_next_line(self):
        source = """
            import os

            def persist(path):
                # lint: allow(raw-syscall)
                os.fsync(path)
        """
        run = run_rules([unit("durability.py", source)], [RawSyscallRule()])
        assert not run.findings
        assert len(run.suppressed) == 1

    def test_pragma_for_other_rule_does_not_suppress(self):
        source = """
            import os

            def persist(path):
                os.fsync(path)  # lint: allow(determinism)
        """
        run = run_rules([unit("durability.py", source)], [RawSyscallRule()])
        assert len(run.findings) == 1

    def test_fingerprint_is_line_independent(self):
        a = Finding("r", "p.py", 10, "Cls.m", "msg")
        b = Finding("r", "p.py", 99, "Cls.m", "msg")
        c = Finding("r", "p.py", 10, "Cls.m", "other msg")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_baseline_round_trip_partitions(self, tmp_path):
        old = Finding("r", "p.py", 1, "s", "accepted long ago")
        new = Finding("r", "p.py", 2, "s", "fresh regression")
        path = tmp_path / "baseline.json"
        assert write_baseline(path, [old]) == 1
        accepted = load_baseline(path)
        fresh, baselined = partition_findings([old, new], accepted)
        assert fresh == [new]
        assert baselined == [old]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_malformed_baseline_raises(self, tmp_path):
        from repro.errors import ModelError

        path = tmp_path / "baseline.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ModelError):
            load_baseline(path)


# ---------------------------------------------------------------------------
# report schema
# ---------------------------------------------------------------------------


def _sample_payload():
    run = run_rules(
        [unit("durability.py", RAW_BAD)], [RawSyscallRule()]
    )
    return report_payload(
        run, all_rules(), root="src/repro",
        new=list(run.findings), baselined=[],
    )


class TestReportSchema:
    def test_valid_payload_passes(self):
        assert validate_payload(_sample_payload()) == []

    def test_round_trips_through_json(self):
        payload = json.loads(json.dumps(_sample_payload()))
        assert validate_payload(payload) == []

    def test_edited_finding_fails_fingerprint_check(self):
        payload = _sample_payload()
        payload["findings"][0]["message"] = "doctored"
        problems = validate_payload(payload)
        assert any("fingerprint" in p for p in problems)

    def test_inconsistent_counts_fail(self):
        payload = _sample_payload()
        payload["counts"]["new"] = 0
        payload["clean"] = True
        problems = validate_payload(payload)
        assert problems

    def test_wrong_suite_fails(self):
        payload = _sample_payload()
        payload["suite"] = "hotpaths"
        assert any("suite" in p for p in validate_payload(payload))

    def test_validate_bench_dispatch(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "validate_bench",
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks" / "validate_bench.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        path = tmp_path / "BENCH_lint.json"
        path.write_text(json.dumps(_sample_payload()))
        assert module.validate_file(path) == "lint"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _lint_cli(*argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return lint_run(parser.parse_args(list(argv)))


class TestCli:
    def test_unknown_rule_gets_did_you_mean(self, capsys):
        assert _lint_cli("--rule", "determinsm") == 2
        err = capsys.readouterr().err
        assert "did you mean 'determinism'?" in err
        assert "known rules:" in err

    def test_list_rules_prints_catalog(self, capsys):
        assert _lint_cli("--list-rules") == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out
            assert rule.rationale.split()[0] in out
        assert "faults.py" in out  # blessed sites are listed

    def test_dirty_fixture_tree_exits_1(self, tmp_path, capsys):
        (tmp_path / "durability.py").write_text(textwrap.dedent(RAW_BAD))
        assert _lint_cli(str(tmp_path), "--no-baseline") == 1
        assert "raw-syscall" in capsys.readouterr().out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "durability.py").write_text(textwrap.dedent(RAW_BAD))
        baseline = tmp_path / "baseline.json"
        assert _lint_cli(str(tmp_path), "--baseline", str(baseline),
                         "--write-baseline") == 0
        assert _lint_cli(str(tmp_path), "--baseline", str(baseline)) == 0
        out = capsys.readouterr().out
        assert "(baselined)" in out

    def test_json_report_written_and_valid(self, tmp_path):
        (tmp_path / "durability.py").write_text(textwrap.dedent(RAW_BAD))
        out_path = tmp_path / "report.json"
        assert _lint_cli(str(tmp_path), "--no-baseline",
                         "--output", str(out_path)) == 1
        payload = json.loads(out_path.read_text())
        assert validate_payload(payload) == []
        assert payload["clean"] is False

    def test_repro_cli_wires_lint_subcommand(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        assert "raw-syscall" in capsys.readouterr().out

    def test_missing_path_exits_2(self, tmp_path):
        assert _lint_cli(str(tmp_path / "missing")) == 2


# ---------------------------------------------------------------------------
# the live tree
# ---------------------------------------------------------------------------


class TestSelfRun:
    def test_lint_self_run(self, capsys):
        """The shipped tree lints clean: zero non-baseline findings.

        CI must-run guard: this test may never be skipped.  If it fails,
        the finding text printed below IS the diagnosis — either fix the
        violation or (for a deliberate exception) add a documented
        pragma, never a silent baseline entry.
        """
        exit_code = _lint_cli(str(default_root()), "--no-baseline")
        out = capsys.readouterr().out
        assert exit_code == 0, f"repro lint found regressions:\n{out}"
        assert "clean" in out

    def test_every_rule_ran_against_the_tree(self):
        from repro.lint import load_units

        rules = all_rules()
        assert len(rules) >= 6
        units = load_units(default_root())
        run = run_rules(units, rules, root=default_root())
        assert run.files > 50
        # The deliberate exceptions stay visible as suppressions, not
        # silently dropped: the lock protocol (5) + lag/audit stamps (3).
        assert len(run.suppressed) == 8

    def test_committed_baseline_is_empty(self):
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        baseline = repo_root / "lint-baseline.json"
        assert baseline.exists()
        assert load_baseline(baseline) == set()

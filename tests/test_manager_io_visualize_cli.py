"""Tests for the adoption layer: GC facade, serialization, rendering, CLI."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.analysis.visualize import render_ascii, render_dot
from repro.cli import main as cli_main
from repro.core.policies import EagerC1Policy, NeverDeletePolicy
from repro.errors import ModelError, UnsafeDeletionError
from repro.io import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    schedule_from_list,
    schedule_to_list,
)
from repro.manager import GarbageCollectedScheduler
from repro.model.schedule import Schedule
from repro.model.status import AccessMode
from repro.model.steps import BeginDeclared, Read
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.workloads.generator import WorkloadConfig, basic_stream, predeclared_stream
from repro.workloads.traces import example1_graph, example1_schedule

from tests.conftest import basic_step_streams, graph_from_stream


class TestGarbageCollectedScheduler:
    def test_loop_deletes_and_counts(self):
        gc = GarbageCollectedScheduler(
            ConflictGraphScheduler(), EagerC1Policy(), verify_c2=True
        )
        gc.feed_many(example1_schedule())
        assert gc.stats.deletions >= 1
        assert gc.stats.steps_fed == len(example1_schedule())
        assert gc.stats.peak_graph_size >= len(gc.graph)
        assert "eager-c1" in repr(gc)

    def test_default_policy_keeps_everything(self):
        gc = GarbageCollectedScheduler(ConflictGraphScheduler())
        gc.feed_many(example1_schedule())
        assert gc.stats.deletions == 0
        assert len(gc.graph.completed_transactions()) == 2

    def test_verify_c2_catches_rogue_policy(self):
        class RoguePolicy(NeverDeletePolicy):
            name = "rogue"

            def select(self, scheduler):
                return frozenset(scheduler.graph.completed_transactions())

        gc = GarbageCollectedScheduler(
            ConflictGraphScheduler(), RoguePolicy(), verify_c2=True
        )
        with pytest.raises(UnsafeDeletionError):
            gc.feed_many(example1_schedule())

    def test_stats_dict(self):
        gc = GarbageCollectedScheduler(ConflictGraphScheduler(), EagerC1Policy())
        gc.feed_many(example1_schedule())
        payload = gc.stats.as_dict()
        assert payload["steps_fed"] == 8
        assert payload["deletions"] == gc.stats.deletions

    def test_on_long_stream_matches_runner(self):
        config = WorkloadConfig(n_transactions=25, n_entities=6, seed=4)
        stream = basic_stream(config)
        gc = GarbageCollectedScheduler(
            ConflictGraphScheduler(), EagerC1Policy(), verify_c2=True
        )
        gc.feed_many(stream)
        from repro.analysis.serializability import is_conflict_serializable

        assert is_conflict_serializable(gc.accepted_subschedule())


class TestGraphSerialization:
    def test_round_trip_example1(self):
        graph = example1_graph()
        restored = graph_from_json(graph_to_json(graph))
        assert restored.nodes() == graph.nodes()
        assert set(restored.arcs()) == set(graph.arcs())
        for txn in graph.nodes():
            assert restored.info(txn).state == graph.info(txn).state
            assert restored.info(txn).accesses == graph.info(txn).accesses

    def test_round_trip_preserves_bookkeeping(self):
        graph = example1_graph()
        graph.delete("T2")
        restored = graph_from_json(graph_to_json(graph))
        assert restored.deleted_transactions() == frozenset({"T2"})
        with pytest.raises(Exception):
            restored.add_transaction("T2")

    def test_round_trip_futures_and_reads_from(self):
        from repro.workloads.traces import example2_graph

        _, graph = example2_graph()
        graph.info("B").reads_from.add("A")
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.info("A").future == {"y": AccessMode.READ}
        assert restored.info("B").reads_from == {"A"}

    def test_bad_format_rejected(self):
        with pytest.raises(ModelError):
            graph_from_dict({"format": 99, "nodes": [], "arcs": []})

    @given(basic_step_streams(max_txns=4, max_entities=3, max_steps=14))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_random_graphs(self, steps):
        graph = graph_from_stream(steps)
        restored = graph_from_json(graph_to_json(graph))
        assert restored.nodes() == graph.nodes()
        assert set(restored.arcs()) == set(graph.arcs())
        for txn in graph.nodes():
            assert restored.info(txn).accesses == graph.info(txn).accesses


class TestScheduleSerialization:
    def test_round_trip_basic(self):
        schedule = example1_schedule()
        assert schedule_from_list(schedule_to_list(schedule)) == schedule

    def test_round_trip_predeclared(self):
        config = WorkloadConfig(n_transactions=5, n_entities=4, seed=3)
        schedule = predeclared_stream(config)
        assert schedule_from_list(schedule_to_list(schedule)) == schedule

    def test_json_safe(self):
        payload = json.dumps(schedule_to_list(example1_schedule()))
        assert schedule_from_list(json.loads(payload)) == example1_schedule()

    def test_unknown_kind(self):
        with pytest.raises(ModelError):
            schedule_from_list([{"kind": "mystery"}])


class TestVisualize:
    def test_ascii_shows_states_and_accesses(self):
        text = render_ascii(example1_graph())
        assert "[A] T1 (rx) -> T2, T3" in text
        assert "[C] T3 (wx)" in text

    def test_ascii_shows_future_with_question_mark(self):
        from repro.workloads.traces import example2_graph

        _, graph = example2_graph()
        text = render_ascii(graph)
        assert "ry?" in text  # A's declared future read of y

    def test_ascii_mentions_deleted(self):
        graph = example1_graph()
        graph.delete("T2")
        assert "deleted: T2" in render_ascii(graph)

    def test_dot_styles_by_state(self):
        dot = render_dot(example1_graph())
        assert "doublecircle" in dot  # active T1
        assert '"T1" -> "T2";' in dot

    def test_dot_dashes_dependency_arcs(self):
        from repro.core.reduced_graph import ReducedGraph
        from repro.model.status import TxnState

        graph = ReducedGraph()
        graph.add_transaction("W")
        graph.add_transaction("R")
        graph.add_arc("W", "R")
        graph.info("R").reads_from.add("W")
        assert '"W" -> "R" [style=dashed];' in render_dot(graph)


class TestCli:
    def test_demo(self, capsys):
        assert cli_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "C2({T2, T3}) = False" in out

    def test_run_conflict(self, capsys):
        code = cli_main(
            ["run", "--transactions", "12", "--entities", "5", "--seed", "2"]
        )
        assert code == 0
        assert "graph size" in capsys.readouterr().out

    def test_run_every_scheduler(self, capsys):
        pairs = [
            ("conflict", "eager-c1"),
            ("certifier", "never"),
            ("2pl", "never"),
            ("multiwrite", "eager-c3"),
            ("predeclared", "eager-c4"),
        ]
        for scheduler, policy in pairs:
            code = cli_main(
                ["run", "--scheduler", scheduler, "--policy", policy,
                 "--transactions", "10", "--entities", "5"]
            )
            assert code == 0, (scheduler, policy)

    def test_compare(self, capsys):
        assert cli_main(["compare", "--transactions", "15", "--entities", "5"]) == 0
        out = capsys.readouterr().out
        assert "eager-c1" in out and "never" in out

    def test_dump_formats(self, capsys):
        for fmt, marker in [("ascii", "->"), ("dot", "digraph"), ("json", '"arcs"')]:
            code = cli_main(
                ["dump", "--format", fmt, "--transactions", "6", "--entities", "4"]
            )
            assert code == 0
            assert marker in capsys.readouterr().out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])

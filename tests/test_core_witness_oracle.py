"""The Theorem 1 agreement suite: C1 vs constructed witnesses vs the
bounded oracle.

These tests validate the *iff* of Theorem 1 empirically, in both
directions, against machinery that shares no code with the C1 checker:

* **necessity**: whenever C1 fails, the paper's constructed continuation
  makes the reduced scheduler accept a step the original rejects;
* **sufficiency**: whenever C1 holds, the bounded exhaustive oracle finds
  no diverging continuation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import c1_violations, can_delete
from repro.core.oracle import bounded_safety_check, oracle_universe
from repro.core.set_conditions import can_delete_set
from repro.core.witnesses import (
    basic_witness_continuation,
    check_divergence,
)
from repro.errors import DeletionError
from repro.model.steps import Begin, Read, Write
from repro.scheduler.conflict import ConflictGraphScheduler

from tests.conftest import basic_step_streams, graph_from_stream


class TestWitnessConstruction:
    def test_example1_witness_diverges(self, fig1_graph):
        reduced = fig1_graph.reduced_by(["T3"])
        continuation = basic_witness_continuation(reduced, "T2")
        divergence = check_divergence(reduced, ["T2"], continuation)
        assert divergence is not None
        assert divergence.step == continuation[-1]

    def test_witness_refused_when_c1_holds(self, fig1_graph):
        with pytest.raises(DeletionError):
            basic_witness_continuation(fig1_graph, "T2")

    def test_witness_with_multiple_actives_aborts_others(self, fig1_graph):
        # Add a second active transaction that must be killed by the gadget.
        graph = fig1_graph.copy()
        graph.add_transaction("T9")
        from repro.model.status import AccessMode

        graph.record_access("T9", "x", AccessMode.READ)
        graph.add_arc("T9", "T3")
        reduced = graph.reduced_by(["T3"])
        continuation = basic_witness_continuation(reduced, "T2")
        # The gadget reads+writes a fresh entity with a helper transaction.
        kinds = [type(s).__name__ for s in continuation]
        assert "Begin" in kinds  # the helper Tw
        divergence = check_divergence(reduced, ["T2"], continuation)
        assert divergence is not None

    def test_read_violation_direction(self):
        """Candidate READ x: the final step has the predecessor WRITE x."""
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(
            [
                Begin("T1"),
                Read("T1", "y"),
                Begin("T2"),
                Read("T2", "x"),
                Write("T2", frozenset({"y"})),  # arc T1 -> T2
            ]
        )
        graph = scheduler.graph
        violations = c1_violations(graph, "T2")
        assert violations and violations[0].entity == "x"
        assert violations[0].required_mode.name == "READ"
        continuation = basic_witness_continuation(graph, "T2")
        final = continuation[-1]
        assert isinstance(final, Write) and final.entities == frozenset({"x"})
        assert check_divergence(graph, ["T2"], continuation) is not None


class TestOracle:
    def test_oracle_universe_includes_fresh(self, fig1_graph):
        entities = oracle_universe(fig1_graph, fresh_entities=2)
        assert "x" in entities
        assert len([e for e in entities if e.startswith("_fresh")]) == 2

    def test_safe_deletion_silent(self, fig1_graph):
        assert bounded_safety_check(fig1_graph, ["T2"], max_depth=4) is None
        assert bounded_safety_check(fig1_graph, ["T3"], max_depth=4) is None

    def test_unsafe_pair_found(self, fig1_graph):
        counterexample = bounded_safety_check(
            fig1_graph, ["T2", "T3"], max_depth=3
        )
        assert counterexample is not None

    def test_counterexample_replays(self, fig1_graph):
        counterexample = bounded_safety_check(fig1_graph, ["T2", "T3"], max_depth=3)
        divergence = check_divergence(fig1_graph, ["T2", "T3"], counterexample)
        assert divergence is not None
        assert divergence.step == counterexample[-1]


class TestTheorem1Agreement:
    """Randomized both-directions agreement: the headline E2 property."""

    @given(basic_step_streams(max_txns=4, max_entities=2, max_steps=10))
    @settings(max_examples=50, deadline=None)
    def test_c1_violation_implies_witness_divergence(self, steps):
        graph = graph_from_stream(steps)
        for txn in sorted(graph.completed_transactions()):
            if can_delete(graph, txn):
                continue
            continuation = basic_witness_continuation(graph, txn)
            divergence = check_divergence(graph, [txn], continuation)
            assert divergence is not None, (
                f"C1 rejected {txn} but the paper's witness found no "
                f"divergence; steps={steps}"
            )

    @given(basic_step_streams(max_txns=3, max_entities=2, max_steps=8))
    @settings(max_examples=25, deadline=None)
    def test_c1_holds_implies_bounded_oracle_silent(self, steps):
        graph = graph_from_stream(steps)
        for txn in sorted(graph.completed_transactions()):
            if not can_delete(graph, txn):
                continue
            counterexample = bounded_safety_check(
                graph, [txn], max_depth=4, fresh_entities=1, max_new_txns=1
            )
            assert counterexample is None, (
                f"C1 accepted {txn} but the oracle refutes it with "
                f"{counterexample}; steps={steps}"
            )

    @given(basic_step_streams(max_txns=3, max_entities=2, max_steps=8))
    @settings(max_examples=15, deadline=None)
    def test_c2_sets_agree_with_oracle(self, steps):
        graph = graph_from_stream(steps)
        completed = sorted(graph.completed_transactions())
        if not (2 <= len(completed) <= 3):
            return
        safe = can_delete_set(graph, completed)
        counterexample = bounded_safety_check(
            graph, completed, max_depth=4, fresh_entities=1, max_new_txns=1
        )
        if safe:
            assert counterexample is None
        # When unsafe the bounded oracle *may* need deeper search, so only
        # the safe direction is asserted here; the unsafe direction is
        # covered by the witness construction tests above.

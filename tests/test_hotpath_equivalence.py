"""Property tests: the copy-free hot paths equal the naive formulations.

Randomized (seeded) workloads — including aborts and deletions — are
replayed through every scheduler; at checkpoints along the stream each
optimized layer is compared against its from-scratch oracle in
:mod:`repro.core.reference`:

* cached tight-path queries vs. snapshot-BFS recomputation;
* inverted entity indexes vs. full node scans;
* the set-cloning ``copy()`` vs. the arc-by-arc legacy rebuild
  (``check_invariants`` asserts the cloned closure matches a recomputed
  one);
* trial deletions roll back to the exact pre-trial graph;
* dirty-set / gated engine sweeps delete byte-identically to the
  unconditional full-scan cadence.
"""

from __future__ import annotations

import random

import pytest

from repro.core.policies import (
    EagerC1Policy,
    EagerC3Policy,
    EagerC4Policy,
    Lemma1Policy,
    NoncurrentPolicy,
)
from repro.core.reference import (
    legacy_copy,
    legacy_select_eager_c1,
    legacy_select_eager_c3,
    legacy_select_eager_c4,
    naive_accessors_of,
    naive_active_tight_predecessors,
    naive_completed_tight_successors,
    naive_noncurrent_transactions,
    naive_tight_predecessors,
    naive_tight_successors,
)
from repro.engine import Engine
from repro.errors import GraphError
from repro.io import graph_to_dict
from repro.model.status import AccessMode
from repro.registry import create_policy, create_scheduler
from repro.workloads.generator import (
    WorkloadConfig,
    basic_stream,
    multiwrite_stream,
    predeclared_stream,
)

#: (scheduler, stream factory) for every graph-carrying scheduler; the
#: graph-less strict-2pl baseline is exercised in the engine test below.
GRAPH_CASES = [
    ("conflict-graph", basic_stream),
    ("certifier", basic_stream),
    ("multiwrite", multiwrite_stream),
    ("predeclared", predeclared_stream),
]

SEEDS = [3, 17, 91]


def _config(seed: int) -> WorkloadConfig:
    return WorkloadConfig(
        n_transactions=40,
        n_entities=8,
        multiprogramming=5,
        write_fraction=0.5,
        max_accesses=3,
        zipf_s=0.5,
        seed=seed,
    )


def _checkpoints(n_steps: int):
    """A handful of probe points spread over the stream."""
    return {n_steps // 4, n_steps // 2, (3 * n_steps) // 4, n_steps - 1}


class TestQueryEquivalence:
    @pytest.mark.parametrize("scheduler_name,stream_factory", GRAPH_CASES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tight_and_entity_queries_match_naive(
        self, scheduler_name, stream_factory, seed
    ):
        scheduler = create_scheduler(scheduler_name)
        stream = list(stream_factory(_config(seed)))
        rng = random.Random(seed)
        probes = _checkpoints(len(stream))
        deleted_any = False
        for index, step in enumerate(stream):
            scheduler.feed(step)
            if index not in probes:
                continue
            graph = scheduler.graph
            for txn in sorted(graph):
                assert graph.tight_predecessors(txn) == naive_tight_predecessors(
                    graph, txn
                )
                assert graph.tight_successors(txn) == naive_tight_successors(
                    graph, txn
                )
                assert graph.active_tight_predecessors(
                    txn
                ) == naive_active_tight_predecessors(graph, txn)
                assert graph.completed_tight_successors(
                    txn
                ) == naive_completed_tight_successors(graph, txn)
            entities = {e for t in graph for e in graph.info(t).accesses}
            for entity in sorted(entities):
                for mode in (AccessMode.READ, AccessMode.WRITE):
                    assert graph.accessors_of(entity, mode) == naive_accessors_of(
                        graph, entity, mode
                    )
            assert graph.writers_of("e1") == naive_accessors_of(
                graph, "e1", AccessMode.WRITE
            )
            graph.check_invariants()
            # Interleave deletions (via lemma1 — safe in every model) so
            # later probes exercise post-contraction caches and indexes.
            selection = Lemma1Policy().select(scheduler)
            if selection and rng.random() < 0.8:
                scheduler.delete_transactions(sorted(selection))
                deleted_any = True
                graph.check_invariants()
        assert deleted_any or len(scheduler.graph) >= 0  # smoke guard

    @pytest.mark.parametrize("seed", SEEDS)
    def test_noncurrent_matches_naive(self, seed):
        scheduler = create_scheduler("conflict-graph")
        stream = list(basic_stream(_config(seed)))
        probes = _checkpoints(len(stream))
        for index, step in enumerate(stream):
            scheduler.feed(step)
            if index in probes:
                policy = NoncurrentPolicy()
                assert policy.select(scheduler) == naive_noncurrent_transactions(
                    scheduler.currency, scheduler.graph
                )

    @pytest.mark.parametrize("scheduler_name,stream_factory", GRAPH_CASES)
    def test_aborts_keep_closure_invariants(self, scheduler_name, stream_factory):
        """The restricted remove_node_abort rebuild leaves no drift."""
        config = WorkloadConfig(
            n_transactions=30,
            n_entities=4,  # few entities => plenty of cycles and aborts
            multiprogramming=6,
            write_fraction=0.6,
            max_accesses=3,
            seed=5,
        )
        scheduler = create_scheduler(scheduler_name)
        aborted = 0
        for step in stream_factory(config):
            result = scheduler.feed(step)
            if result.aborted:
                aborted += len(result.aborted)
                scheduler.graph.check_invariants()
        if scheduler_name in ("conflict-graph", "multiwrite"):
            assert aborted > 0  # the workload really exercised aborts
        scheduler.graph.check_invariants()


class TestCopyAndTrial:
    @pytest.mark.parametrize("scheduler_name,stream_factory", GRAPH_CASES)
    def test_fast_copy_equals_legacy_rebuild(self, scheduler_name, stream_factory):
        scheduler = create_scheduler(scheduler_name)
        stream = list(stream_factory(_config(23)))
        scheduler.feed_many(stream[: 2 * len(stream) // 3])
        graph = scheduler.graph
        fast = graph.copy()
        slow = legacy_copy(graph)
        fast.check_invariants()  # cloned closure == recomputed closure
        # The fast copy is bit-exact (same interned-id layout, same masks);
        # the legacy rebuild is logically equal but re-interns nodes in
        # sorted order, so compare it on the id-independent sections.
        assert graph_to_dict(fast) == graph_to_dict(graph)
        original = graph_to_dict(graph)
        rebuilt = graph_to_dict(slow)
        for key in ("nodes", "arcs", "deleted", "aborted"):
            assert rebuilt[key] == original[key]
        # Independence: mutating the clone leaves the original untouched.
        victims = sorted(Lemma1Policy().select(scheduler))
        if victims:
            fast.delete(victims[0])
            assert victims[0] in graph

    def test_trial_rollback_restores_graph_exactly(self):
        scheduler = create_scheduler("predeclared")
        stream = list(predeclared_stream(_config(29)))
        scheduler.feed_many(stream[: len(stream) // 2])
        graph = scheduler.graph
        before = graph_to_dict(graph)
        with graph.trial_deletions():
            deletable = [
                txn
                for txn in sorted(graph.completed_transactions())
            ]
            for txn in deletable:
                graph.delete(txn)
            assert all(txn not in graph for txn in deletable)
        assert graph_to_dict(graph) == before
        graph.check_invariants()

    def test_trial_blocks_other_mutations(self):
        graph = create_scheduler("conflict-graph").graph
        graph.add_transaction("T1")
        with pytest.raises(GraphError):
            with graph.trial_deletions():
                graph.add_transaction("T2")
        # The failed trial rolled back; normal mutation works again.
        graph.add_transaction("T2")

    def test_trial_blocks_copy_and_serialization(self):
        """A mid-trial copy or snapshot would freeze trial deletions as
        permanent and clone/serialize detached interner slots."""
        from repro.errors import ModelError
        from repro.model.status import TxnState

        graph = create_scheduler("conflict-graph").graph
        graph.add_transaction("T1", TxnState.COMMITTED)
        graph.begin_trial()
        try:
            with pytest.raises(GraphError):
                graph.copy()
            with pytest.raises(ModelError):
                graph_to_dict(graph)
        finally:
            graph.rollback_trial()
        assert graph_to_dict(graph)["nodes"]  # fine again after rollback

    def test_nested_trials_rejected(self):
        graph = create_scheduler("conflict-graph").graph
        graph.begin_trial()
        with pytest.raises(GraphError):
            graph.begin_trial()
        graph.rollback_trial()


class TestPolicyEquivalence:
    """Engine dirty-set/gated sweeps vs. unconditional full scans, and the
    optimized eager policies vs. their legacy (copying) formulations."""

    ENGINE_CASES = [
        ("conflict-graph", "eager-c1", basic_stream),
        ("conflict-graph", "lemma1", basic_stream),
        ("conflict-graph", "noncurrent", basic_stream),
        ("certifier", "noncurrent", basic_stream),
        ("strict-2pl", "lemma1", basic_stream),
        ("multiwrite", "eager-c3", multiwrite_stream),
        ("multiwrite", "lemma1", multiwrite_stream),
        ("predeclared", "eager-c4", predeclared_stream),
        ("predeclared", "lemma1", predeclared_stream),
    ]

    @pytest.mark.parametrize("scheduler,policy,stream_factory", ENGINE_CASES)
    @pytest.mark.parametrize("interval", [1, 4])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dirty_sweeps_delete_identically(
        self, scheduler, policy, stream_factory, interval, seed
    ):
        stream = list(stream_factory(_config(seed)))
        gated = Engine(
            scheduler=scheduler, policy=policy, sweep_interval=interval
        )
        full = Engine(
            scheduler=scheduler,
            policy=policy,
            sweep_interval=interval,
            skip_clean_sweeps=False,
        )
        # Force full scans on the reference engine even for
        # dirty-consuming policies.
        full._dirty_tracker = None
        gated.feed_batch(stream)
        full.feed_batch(stream)
        assert gated.stats.deleted_ids == full.stats.deleted_ids
        assert gated.stats.deletions == full.stats.deletions
        assert graph_to_dict(gated.graph) == graph_to_dict(full.graph)
        assert gated.sweeps_run + gated.sweeps_skipped == full.sweeps_run

    @pytest.mark.parametrize("seed", SEEDS)
    def test_eager_c1_matches_legacy(self, seed):
        scheduler = create_scheduler("conflict-graph")
        policy = EagerC1Policy()
        probes = _checkpoints(len(list(basic_stream(_config(seed)))))
        for index, step in enumerate(basic_stream(_config(seed))):
            scheduler.feed(step)
            if index in probes:
                new = policy.select(scheduler)
                assert new == legacy_select_eager_c1(scheduler.graph)
                scheduler.delete_transactions(sorted(new))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_eager_c4_matches_legacy(self, seed):
        scheduler = create_scheduler("predeclared")
        policy = EagerC4Policy()
        stream = list(predeclared_stream(_config(seed)))
        probes = _checkpoints(len(stream))
        for index, step in enumerate(stream):
            scheduler.feed(step)
            if index in probes:
                before = graph_to_dict(scheduler.graph)
                new = policy.select(scheduler)
                assert graph_to_dict(scheduler.graph) == before  # trial undone
                assert new == legacy_select_eager_c4(scheduler.graph)
                scheduler.delete_transactions(sorted(new))

    @pytest.mark.parametrize("seed", [3, 17])
    def test_eager_c3_matches_legacy(self, seed):
        config = WorkloadConfig(
            n_transactions=16,
            n_entities=6,
            multiprogramming=4,  # keep the 2^actives C3 search small
            write_fraction=0.5,
            max_accesses=3,
            seed=seed,
        )
        scheduler = create_scheduler("multiwrite")
        policy = EagerC3Policy(max_actives=8)
        stream = list(multiwrite_stream(config))
        probes = _checkpoints(len(stream))
        for index, step in enumerate(stream):
            scheduler.feed(step)
            if index in probes:
                new = policy.select(scheduler)
                assert new == legacy_select_eager_c3(
                    scheduler.graph, max_actives=8
                )
                scheduler.delete_transactions(sorted(new))

    def test_dirty_restricted_select_equals_full_scan(self):
        """Explicitly: restricting eager policies to the engine's dirty set
        never changes the selection (the core soundness claim)."""
        stream = list(basic_stream(_config(17)))
        engine = Engine(scheduler="conflict-graph", policy="eager-c1",
                        sweep_interval=4)
        checked = 0
        original_sweep = engine.sweep

        def checking_sweep():
            nonlocal checked
            if engine._dirty_tracker is not None:
                dirty = engine._dirty_tracker.snapshot()
                if dirty is not None:
                    full = engine.policy.select(engine.scheduler, dirty=None)
                    restricted = engine.policy.select(
                        engine.scheduler, dirty=dirty
                    )
                    assert restricted == full
                    checked += 1
            return original_sweep()

        engine.sweep = checking_sweep
        for step in stream:
            engine.feed(step)
        assert checked > 0

    def test_skip_counts_are_reported(self):
        stream = list(basic_stream(_config(3)))
        engine = Engine(scheduler="conflict-graph", policy="eager-c1")
        engine.feed_batch(stream)
        assert engine.sweeps_skipped > 0  # reads/begins trigger no scan
        assert engine.sweeps_run + engine.sweeps_skipped == len(stream)

    def test_policy_registry_unchanged_signatures(self):
        """Registry-built policies accept the dirty keyword (None = all)."""
        for name in ("never", "lemma1", "noncurrent", "eager-c1", "optimal"):
            policy = create_policy(name)
            scheduler = create_scheduler("conflict-graph")
            assert policy.select(scheduler, dirty=None) == frozenset()

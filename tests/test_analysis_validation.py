"""Tests for the §4 reduced-graph property validator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.analysis.validation import validate_reduced_graph
from repro.core.policies import EagerC1Policy, NoncurrentPolicy
from repro.errors import GraphError
from repro.model.schedule import Schedule
from repro.scheduler.conflict import ConflictGraphScheduler
from repro.scheduler.multiwrite import MultiwriteScheduler
from repro.workloads.generator import WorkloadConfig, basic_stream
from repro.workloads.traces import example1_graph, example1_schedule

from tests.conftest import basic_step_streams, multiwrite_step_streams


class TestValidator:
    def test_conflict_graph_validates(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(example1_schedule())
        validate_reduced_graph(scheduler.graph, scheduler.accepted_subschedule())

    def test_reduced_graph_validates_after_safe_delete(self):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(example1_schedule())
        scheduler.delete_transaction("T2")
        validate_reduced_graph(scheduler.graph, scheduler.accepted_subschedule())

    def test_missing_conflict_arc_detected(self):
        graph = example1_graph()
        kernel = graph._closure
        i1, i2 = kernel.id_of("T1"), kernel.id_of("T2")
        # Corrupt deliberately: drop the T1 -> T2 arc from the kernel rows,
        # keeping the closure caches coherent enough for the validator.
        kernel._succ[i1] &= ~(1 << i2)
        kernel._pred[i2] &= ~(1 << i1)
        kernel._arc_count -= 1
        kernel._desc[i1] &= ~(1 << i2)
        kernel._anc[i2] &= ~(1 << i1)
        with pytest.raises(GraphError):
            validate_reduced_graph(graph, example1_schedule())

    def test_missing_active_detected(self):
        graph = example1_graph()
        # Delete the ACTIVE T1 structurally (bypassing the safety check).
        graph._closure.contract("T1")
        del graph._info["T1"]
        with pytest.raises(GraphError):
            validate_reduced_graph(graph, example1_schedule())

    def test_foreign_node_detected(self):
        graph = example1_graph()
        graph.add_transaction("ghost")
        with pytest.raises(GraphError):
            validate_reduced_graph(graph, example1_schedule())


class TestValidatorUnderPolicies:
    @pytest.mark.parametrize("policy_factory", [EagerC1Policy, NoncurrentPolicy])
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_policy_runs_keep_the_invariants(self, policy_factory, seed):
        config = WorkloadConfig(
            n_transactions=25, n_entities=6, multiprogramming=4,
            write_fraction=0.5, seed=seed,
        )
        scheduler = ConflictGraphScheduler()
        policy = policy_factory()
        for step in basic_stream(config):
            scheduler.feed(step)
            policy.apply(scheduler)
            validate_reduced_graph(
                scheduler.graph, scheduler.accepted_subschedule()
            )

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=16))
    @settings(max_examples=50, deadline=None)
    def test_property_basic_streams(self, steps):
        scheduler = ConflictGraphScheduler()
        scheduler.feed_many(steps)
        validate_reduced_graph(scheduler.graph, scheduler.accepted_subschedule())

    @given(multiwrite_step_streams(max_txns=5, max_entities=3, max_steps=18))
    @settings(max_examples=50, deadline=None)
    def test_property_multiwrite_streams(self, steps):
        scheduler = MultiwriteScheduler()
        scheduler.feed_many(steps)
        validate_reduced_graph(scheduler.graph, scheduler.accepted_subschedule())

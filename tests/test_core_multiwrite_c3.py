"""Tests for condition C3 (multiwrite model, Lemma 4 / Theorem 6)."""

from __future__ import annotations

import pytest

from repro.core.multiwrite_conditions import (
    c3_violation_witness,
    can_delete_multiwrite,
    dependents_closure,
)
from repro.errors import DeletionError, NotCompletedError
from repro.model.status import AccessMode as M
from repro.model.steps import Begin, Finish, Read, WriteItem
from repro.scheduler.multiwrite import MultiwriteScheduler

from tests.conftest import build_graph


class TestDependentsClosure:
    def test_direct_and_transitive(self):
        graph = build_graph(
            {"A": "A", "F1": "F", "F2": "F"},
            [],
            [],
            reads_from=[("F1", "A"), ("F2", "F1")],
        )
        closure = dependents_closure(graph, ["A"])
        assert closure == frozenset({"A", "F1", "F2"})

    def test_empty(self):
        graph = build_graph({"A": "A"}, [], [])
        assert dependents_closure(graph, []) == frozenset()


class TestC3Fixed:
    def test_only_committed_candidates(self):
        graph = build_graph({"F1": "F"}, [], [])
        with pytest.raises(NotCompletedError):
            can_delete_multiwrite(graph, "F1")

    def test_max_actives_guard(self):
        nodes = {f"A{i}": "A" for i in range(25)}
        nodes["T"] = "C"
        graph = build_graph(nodes, [], [("T", "x", M.WRITE)])
        with pytest.raises(DeletionError):
            can_delete_multiwrite(graph, "T", max_actives=20)

    def test_no_active_predecessors_safe(self):
        graph = build_graph(
            {"T": "C", "A": "A"},
            [("T", "A")],
            [("T", "x", M.WRITE)],
        )
        assert can_delete_multiwrite(graph, "T")

    def test_basic_violation_at_empty_m(self):
        graph = build_graph(
            {"A": "A", "T": "C"},
            [("A", "T")],
            [("T", "x", M.WRITE)],
        )
        witness = c3_violation_witness(graph, "T")
        assert witness is not None
        assert witness.abort_set == frozenset()
        assert witness.active_pred == "A"
        assert witness.entity == "x"

    def test_witness_covered_by_second_path(self):
        graph = build_graph(
            {"A": "A", "T": "C", "W": "C"},
            [("A", "T"), ("A", "W")],
            [("T", "x", M.WRITE), ("W", "x", M.WRITE)],
        )
        assert can_delete_multiwrite(graph, "T")

    def test_active_only_witness_route_fails_under_abort(self):
        # Witness W reachable only through the active Mid: aborting Mid
        # strands the witness while the FC-path to T survives — C3's ∀M
        # quantifier catches exactly this.
        graph = build_graph(
            {"A": "A", "Mid": "A", "T": "C", "W": "C"},
            [("A", "T"), ("A", "Mid"), ("Mid", "W")],
            [("T", "x", M.WRITE), ("W", "x", M.WRITE)],
        )
        witness = c3_violation_witness(graph, "T")
        assert witness is not None
        assert witness.abort_set == frozenset({"Mid"})

    def test_second_path_may_use_active_nodes(self):
        # "The nodes of the second path may be of any type, even active":
        # routing the witness through the active Mid is fine as long as
        # every abort set that kills the route also kills the FC-path to
        # the candidate.  Here Dep (F) reads from Mid, so aborting Mid
        # cascades to Dep and severs A's FC-path to T as well.
        graph = build_graph(
            {"A": "A", "Mid": "A", "Dep": "F", "T": "C", "W": "C"},
            [("A", "Dep"), ("Dep", "T"), ("A", "Mid"), ("Mid", "W")],
            [("T", "x", M.WRITE), ("W", "x", M.WRITE)],
            reads_from=[("Dep", "Mid")],
        )
        assert can_delete_multiwrite(graph, "T")

    def test_abort_can_expose_violation(self):
        """The witness path dies with an abort set while the FC-path to the
        candidate survives: the quantifier over M is essential."""
        graph = build_graph(
            {"A": "A", "Brittle": "F", "T": "C", "W": "C"},
            [("A", "T"), ("A", "Brittle"), ("Brittle", "W")],
            [("T", "x", M.WRITE), ("W", "x", M.WRITE)],
            reads_from=[("Brittle", "A2")],
        )
        # Brittle depends on a second active A2; aborting A2 removes
        # Brittle (and the only route to W), but A's path to T remains.
        graph.add_transaction("A2")
        witness = c3_violation_witness(graph, "T")
        assert witness is not None
        assert witness.abort_set == frozenset({"A2"})
        assert "Brittle" in witness.abort_closure

    def test_fc_path_requires_completed_intermediates(self):
        # A -> Mid(active) -> T: not an FC-path, so no demand at all.
        graph = build_graph(
            {"A": "A", "Mid": "A", "T": "C"},
            [("A", "Mid"), ("Mid", "T")],
            [("T", "x", M.WRITE)],
        )
        # Mid itself is an active with a direct arc (trivially FC) though!
        witness = c3_violation_witness(graph, "T")
        assert witness is not None
        assert witness.active_pred == "Mid"

    def test_candidate_with_no_accesses(self):
        graph = build_graph({"A": "A", "T": "C"}, [("A", "T")], [])
        assert can_delete_multiwrite(graph, "T")


class TestC3ThroughScheduler:
    def test_committed_chain_end_to_end(self):
        scheduler = MultiwriteScheduler()
        scheduler.feed_many(
            [
                Begin("W1"),
                WriteItem("W1", "x"),
                Finish("W1"),  # commits
                Begin("A"),
                Read("A", "x"),
                Begin("W2"),
                WriteItem("W2", "x"),
                Finish("W2"),
            ]
        )
        graph = scheduler.graph
        # A read x then W2 overwrote it: arc A -> W2; W1 -> A; W1 -> W2.
        assert graph.has_arc("A", "W2")
        # W1: active tight pred? A is not a predecessor of W1.
        assert can_delete_multiwrite(graph, "W1")
        # W2 writes x and its active tight predecessor A has no other
        # completed successor accessing x: not deletable.
        assert not can_delete_multiwrite(graph, "W2")

    def test_f_transactions_block_nothing_but_are_not_candidates(self):
        scheduler = MultiwriteScheduler()
        scheduler.feed_many(
            [
                Begin("B"),
                WriteItem("B", "x"),
                Begin("F1"),
                Read("F1", "x"),
                Finish("F1"),  # F: depends on B
            ]
        )
        graph = scheduler.graph
        assert graph.state("F1").paper_letter == "F"
        with pytest.raises(NotCompletedError):
            can_delete_multiwrite(graph, "F1")

"""Public API surface tests: imports, __all__, and doctests.

A downstream user should be able to drive the whole library through
``import repro``; this suite pins that surface and executes every module's
doctests so the documentation examples can never rot.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ lists missing name {name}"


def test_key_entry_points_callable():
    from repro import (
        ConflictGraphScheduler,
        can_delete,
        can_delete_set,
        greedy_safe_deletion_set,
        maximum_safe_deletion_set,
    )

    scheduler = ConflictGraphScheduler()
    scheduler.feed_many(repro.example1_schedule())
    graph = scheduler.graph
    assert can_delete(graph, "T2")
    assert not can_delete_set(graph, {"T2", "T3"})
    assert len(greedy_safe_deletion_set(graph)) == 1
    assert len(maximum_safe_deletion_set(graph)) == 1


def test_star_import_is_clean():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    assert "ConflictGraphScheduler" in namespace
    assert "can_delete" in namespace


def _all_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        modules.append(importlib.import_module(info.name))
    return modules


@pytest.mark.parametrize(
    "module", _all_modules(), ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module)
    assert results.failed == 0, f"doctest failures in {module.__name__}"


@pytest.mark.parametrize(
    "module", _all_modules(), ids=lambda m: m.__name__
)
def test_every_module_has_a_docstring(module):
    assert module.__doc__ and module.__doc__.strip()


def test_public_classes_have_docstrings():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type):
            assert obj.__doc__, f"{name} lacks a docstring"

"""Tests for the Theorem 5 optimization: demands, greedy, exact."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimal import (
    compute_demands,
    greedy_safe_deletion_set,
    maximum_safe_deletion_set,
)
from repro.core.set_conditions import can_delete_set
from repro.errors import DeletionError
from repro.model.status import AccessMode as M

from tests.conftest import basic_step_streams, build_graph, graph_from_stream


class TestDemands:
    def test_example1_structure(self, fig1_graph):
        structure = compute_demands(fig1_graph)
        assert set(structure.candidates) == {"T2", "T3"}
        # Each candidate's sole demand is witnessed only by the other.
        assert structure.demands["T2"] == (frozenset({"T3"}),)
        assert structure.demands["T3"] == (frozenset({"T2"}),)

    def test_is_safe_matches_c2(self, fig1_graph):
        structure = compute_demands(fig1_graph)
        for subset in ([], ["T2"], ["T3"], ["T2", "T3"]):
            assert structure.is_safe(subset) == can_delete_set(fig1_graph, subset)

    def test_non_candidate_subset_unsafe(self, fig1_graph):
        structure = compute_demands(fig1_graph)
        assert not structure.is_safe(["T1"])  # active, not a candidate

    def test_permanent_witness_drops_demand(self):
        # Witness outside M (cannot be deleted because it violates C1).
        graph = build_graph(
            {"A": "A", "Ti": "C", "W": "C"},
            [("A", "Ti"), ("A", "W")],
            [
                ("Ti", "x", M.WRITE),
                ("W", "x", M.WRITE),
                ("W", "z", M.WRITE),  # private entity: W violates C1
            ],
        )
        structure = compute_demands(graph)
        assert set(structure.candidates) == {"Ti"}
        assert structure.demands["Ti"] == ()  # auto-satisfied forever


class TestGreedy:
    def test_example1_takes_one(self, fig1_graph):
        chosen = greedy_safe_deletion_set(fig1_graph)
        assert len(chosen) == 1
        assert chosen <= {"T2", "T3"}

    def test_priority_respected(self, fig1_graph):
        assert greedy_safe_deletion_set(fig1_graph, priority=["T3", "T2"]) == {
            "T3"
        }
        assert greedy_safe_deletion_set(fig1_graph, priority=["T2", "T3"]) == {
            "T2"
        }

    def test_empty_graph(self, empty_graph):
        assert greedy_safe_deletion_set(empty_graph) == frozenset()

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=16))
    @settings(max_examples=60, deadline=None)
    def test_greedy_always_c2_safe(self, steps):
        graph = graph_from_stream(steps)
        chosen = greedy_safe_deletion_set(graph)
        assert can_delete_set(graph, chosen)

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=16))
    @settings(max_examples=60, deadline=None)
    def test_greedy_is_maximal(self, steps):
        """No single candidate can be added to the greedy set."""
        graph = graph_from_stream(steps)
        chosen = greedy_safe_deletion_set(graph)
        structure = compute_demands(graph)
        for extra in set(structure.candidates) - chosen:
            assert not can_delete_set(graph, chosen | {extra})


class TestExact:
    def test_example1_maximum_is_one(self, fig1_graph):
        best = maximum_safe_deletion_set(fig1_graph)
        assert len(best) == 1

    def test_guard(self, fig1_graph):
        with pytest.raises(DeletionError):
            maximum_safe_deletion_set(fig1_graph, max_candidates=1)

    def test_exact_beats_or_equals_greedy_structured(self):
        """A covering structure where greedy (bad order) is suboptimal:
        demands over witnesses {a,b}, {b,c}, {c,d} — keeping {b, c} lets
        everything else go."""
        # Active P; candidates a..d each write a shared entity; extra
        # candidates u1, u2, u3 whose demands are witnessed by pairs.
        graph = build_graph(
            {"P": "A", "a": "C", "b": "C", "c": "C", "d": "C",
             "u1": "C", "u2": "C", "u3": "C"},
            [("P", n) for n in "abcd"] + [("P", f"u{i}") for i in (1, 2, 3)],
            [
                ("u1", "e1", M.WRITE), ("a", "e1", M.WRITE), ("b", "e1", M.WRITE),
                ("u2", "e2", M.WRITE), ("b", "e2", M.WRITE), ("c", "e2", M.WRITE),
                ("u3", "e3", M.WRITE), ("c", "e3", M.WRITE), ("d", "e3", M.WRITE),
            ],
        )
        best = maximum_safe_deletion_set(graph)
        assert can_delete_set(graph, best)
        # Keep {b, c} (witnesses for e1, e2, e3 via b and c... e1 needs a or
        # b kept; e3 needs c or d kept): delete {a, d, u1, u2, u3} = 5.
        assert len(best) == 5

    @given(basic_step_streams(max_txns=5, max_entities=3, max_steps=16))
    @settings(max_examples=40, deadline=None)
    def test_exact_safe_and_at_least_greedy(self, steps):
        graph = graph_from_stream(steps)
        best = maximum_safe_deletion_set(graph)
        assert can_delete_set(graph, best)
        greedy = greedy_safe_deletion_set(graph)
        assert len(best) >= len(greedy)

    @given(basic_step_streams(max_txns=4, max_entities=2, max_steps=12))
    @settings(max_examples=30, deadline=None)
    def test_exact_is_maximum_by_enumeration(self, steps):
        """Cross-check the branch & bound against full enumeration."""
        import itertools

        graph = graph_from_stream(steps)
        structure = compute_demands(graph)
        candidates = list(structure.candidates)
        if len(candidates) > 10:
            return
        best_size = 0
        for size in range(len(candidates), 0, -1):
            if any(
                structure.is_safe(combo)
                for combo in itertools.combinations(candidates, size)
            ):
                best_size = size
                break
        assert len(maximum_safe_deletion_set(graph)) == best_size

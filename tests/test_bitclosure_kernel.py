"""Property tests for the bitset closure kernel.

Three layers of evidence that :class:`BitClosureGraph` is a faithful (and
recycling) replacement for the set-based reference kernel:

* **Op-sequence equivalence** — hypothesis drives randomized interleavings
  of add_node / add_arc / contract / abort / trial-contract+undo through
  both kernels and compares nodes, arcs, and every closure row after every
  operation.
* **Snapshot exactness** — ``state_dict`` → ``from_state_dict`` round-trips
  the kernel bit for bit, including the interner's slot layout and
  free-list order.
* **The aliasing/ordering contract** — contraction records replayed out of
  most-recent-first order, or across interleaved mutations, raise
  :class:`GraphError` in *both* kernels instead of silently corrupting the
  closure (the regression the old aliasing ``ContractionRecord`` invited).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CycleError, GraphError, NodeNotFoundError
from repro.graphs.bitclosure import BitClosureGraph, NodeInterner, iter_bits
from repro.graphs.closure import ClosureGraph


def _assert_kernels_equal(bit: BitClosureGraph, ref: ClosureGraph) -> None:
    assert bit.nodes() == ref.nodes()
    assert sorted(bit.arcs()) == sorted(ref.arcs())
    assert bit.arc_count() == ref.arc_count()
    for node in ref.nodes():
        assert bit.descendants(node) == ref.descendants(node)
        assert bit.ancestors(node) == ref.ancestors(node)
        assert bit.successors(node) == ref.successors(node)
        assert bit.predecessors(node) == ref.predecessors(node)


#: One randomized operation: (kind selector, node pick, node pick).
_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=1,
    max_size=120,
)


class TestOpSequenceEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_random_ops_match_reference(self, ops):
        bit, ref = BitClosureGraph(), ClosureGraph()
        nodes: list = []
        fresh = 0
        for kind, pick_a, pick_b in ops:
            if kind < 30 or len(nodes) < 3:
                name = f"n{fresh}"
                fresh += 1
                bit.add_node(name)
                ref.add_node(name)
                nodes.append(name)
            elif kind < 75:
                tail = nodes[pick_a % len(nodes)]
                head = nodes[pick_b % len(nodes)]
                outcomes = []
                for kernel in (ref, bit):
                    try:
                        kernel.add_arc(tail, head)
                        outcomes.append("ok")
                    except CycleError:
                        outcomes.append("cycle")
                    except GraphError:
                        outcomes.append("loop")
                assert outcomes[0] == outcomes[1]
            elif kind < 88:
                victim = nodes[pick_a % len(nodes)]
                bit.contract(victim)
                ref.contract(victim)
                nodes.remove(victim)
            else:
                victim = nodes[pick_a % len(nodes)]
                bit.remove_node_abort(victim)
                ref.remove_node_abort(victim)
                nodes.remove(victim)
            _assert_kernels_equal(bit, ref)
        bit.check_invariants()
        ref.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS, trial_picks=st.lists(st.integers(0, 30), max_size=6))
    def test_trial_contract_and_lifo_undo(self, ops, trial_picks):
        bit, ref = BitClosureGraph(), ClosureGraph()
        nodes: list = []
        fresh = 0
        for kind, pick_a, pick_b in ops:
            if kind < 40 or len(nodes) < 3:
                name = f"n{fresh}"
                fresh += 1
                bit.add_node(name)
                ref.add_node(name)
                nodes.append(name)
            else:
                tail = nodes[pick_a % len(nodes)]
                head = nodes[pick_b % len(nodes)]
                try:
                    ref.add_arc(tail, head)
                except (CycleError, GraphError):
                    continue
                bit.add_arc(tail, head)
        before = bit.state_dict()
        victims = []
        for pick in trial_picks:
            remaining = [n for n in nodes if n not in victims]
            if not remaining:
                break
            victims.append(remaining[pick % len(remaining)])
        records = [(v, bit.contract_recording(v)) for v in victims]
        for victim, _record in records:
            ref.contract(victim)
        _assert_kernels_equal(bit, ref)
        for _victim, record in reversed(records):
            bit.uncontract(record)
        # The undo restores the kernel bit for bit — same id layout, same
        # rows, same free list.
        assert bit.state_dict() == before
        bit.check_invariants()


class TestSnapshotExactness:
    @settings(max_examples=40, deadline=None)
    @given(ops=_OPS)
    def test_state_dict_round_trips_bit_exactly(self, ops):
        bit = BitClosureGraph()
        nodes: list = []
        fresh = 0
        for kind, pick_a, pick_b in ops:
            if kind < 35 or len(nodes) < 3:
                name = f"n{fresh}"
                fresh += 1
                bit.add_node(name)
                nodes.append(name)
            elif kind < 80:
                try:
                    bit.add_arc(
                        nodes[pick_a % len(nodes)], nodes[pick_b % len(nodes)]
                    )
                except (CycleError, GraphError):
                    pass
            else:
                victim = nodes[pick_a % len(nodes)]
                if kind % 2:
                    bit.contract(victim)
                else:
                    bit.remove_node_abort(victim)
                nodes.remove(victim)
        state = bit.state_dict()
        restored = BitClosureGraph.from_state_dict(state)
        assert restored.state_dict() == state
        restored.check_invariants()
        _assert_kernels_equal(
            restored,
            _reference_from(bit),
        )
        # Ids (and therefore all masks) are preserved exactly.
        for node in bit.nodes():
            assert restored.id_of(node) == bit.id_of(node)
        assert restored.live_mask == bit.live_mask


def _reference_from(bit: BitClosureGraph) -> ClosureGraph:
    ref = ClosureGraph()
    for node in bit.nodes():
        ref.add_node(node)
    for tail, head in bit.arcs():
        ref.add_arc(tail, head)
    return ref


class TestMalformedStateRejected:
    """from_state_dict validates structure instead of loading a silently
    corrupt kernel (snapshots get hand-edited in post-mortems)."""

    @staticmethod
    def _sample_state():
        g = BitClosureGraph()
        for n in "abcd":
            g.add_node(n)
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        g.contract("d")  # one genuinely free slot
        return g.state_dict()

    def test_valid_state_loads(self):
        BitClosureGraph.from_state_dict(self._sample_state()).check_invariants()

    def test_free_list_naming_occupied_slot_rejected(self):
        state = self._sample_state()
        state["free"] = [0]  # slot 0 holds "a"
        with pytest.raises(GraphError):
            BitClosureGraph.from_state_dict(state)

    def test_incomplete_free_list_rejected(self):
        state = self._sample_state()
        state["free"] = []  # the contracted slot is empty but unlisted
        with pytest.raises(GraphError):
            BitClosureGraph.from_state_dict(state)

    def test_row_referencing_dead_bit_rejected(self):
        state = self._sample_state()
        dead = state["free"][0]
        row = int(state["desc"][0], 16) | (1 << dead)
        state["desc"][0] = format(row, "x")
        with pytest.raises(GraphError):
            BitClosureGraph.from_state_dict(state)

    def test_self_reaching_row_rejected(self):
        state = self._sample_state()
        row = int(state["desc"][0], 16) | 1  # slot 0 "reaches" itself
        state["desc"][0] = format(row, "x")
        with pytest.raises(GraphError):
            BitClosureGraph.from_state_dict(state)

    def test_closure_missing_adjacency_rejected(self):
        state = self._sample_state()
        state["desc"][0] = "0"  # a -> b arc exists but desc says nothing
        with pytest.raises(GraphError):
            BitClosureGraph.from_state_dict(state)

    def test_truncated_rows_rejected(self):
        state = self._sample_state()
        state["succ"] = state["succ"][:-1]
        with pytest.raises(GraphError):
            BitClosureGraph.from_state_dict(state)

    def test_duplicate_free_entries_rejected(self):
        g = BitClosureGraph()
        for n in "abcd":
            g.add_node(n)
        g.contract("c")
        g.contract("d")  # two genuinely free slots
        state = g.state_dict()
        free = state["free"]
        state["free"] = [free[0], free[0]]  # one listed twice, one omitted
        with pytest.raises(GraphError):
            BitClosureGraph.from_state_dict(state)

    def test_wrong_arc_count_rejected(self):
        state = self._sample_state()
        state["arc_count"] = 99
        with pytest.raises(GraphError):
            BitClosureGraph.from_state_dict(state)


class TestInternerRecycling:
    def test_ids_are_recycled_lifo(self):
        interner = NodeInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("c") == 2
        interner.release("b")
        interner.release("a")
        assert interner.capacity == 3
        # LIFO: the most recently freed slot is handed out first.
        assert interner.intern("d") == 0
        assert interner.intern("e") == 1
        assert interner.intern("f") == 3
        assert interner.capacity == 4

    def test_reattach_requires_reserved_slot(self):
        interner = NodeInterner()
        interner.intern("a")
        index = interner.detach("a")
        with pytest.raises(GraphError):
            interner.reattach("a", index + 5)
        interner.reattach("a", index)
        assert interner.id_of("a") == index
        with pytest.raises(GraphError):
            interner.reattach("a", index)

    def test_kernel_capacity_tracks_peak_live_not_history(self):
        bit = BitClosureGraph()
        for wave in range(50):
            names = [f"w{wave}_{i}" for i in range(10)]
            for name in names:
                bit.add_node(name)
            for tail, head in zip(names, names[1:]):
                bit.add_arc(tail, head)
            for name in names:
                bit.contract(name)
        # 500 nodes passed through; the id space never grew past one wave.
        assert len(bit) == 0
        assert bit.interner.capacity <= 10
        bit.check_invariants()

    def test_missing_nodes_raise(self):
        bit = BitClosureGraph()
        bit.add_node("a")
        with pytest.raises(NodeNotFoundError):
            bit.id_of("ghost")
        with pytest.raises(NodeNotFoundError):
            bit.mask_of(["a", "ghost"])
        with pytest.raises(NodeNotFoundError):
            bit.descendants("ghost")
        with pytest.raises(NodeNotFoundError):
            bit.contract("ghost")


class TestIterBits:
    def test_iter_bits_matches_binary(self):
        mask = 0b1011001
        assert list(iter_bits(mask)) == [0, 3, 4, 6]
        assert list(iter_bits(0)) == []
        assert list(iter_bits(1 << 200)) == [200]


class TestContractionOrderingContract:
    """Satellite: the undo most-recent-first / no-interleaved-mutation
    contract, enforced in both kernels.

    Under the old aliasing ``ContractionRecord`` these sequences silently
    corrupted the closure (the record re-installed rows describing a graph
    that no longer existed); now they raise :class:`GraphError`.
    """

    @pytest.mark.parametrize("kernel_cls", [ClosureGraph, BitClosureGraph])
    def test_interleaved_mutation_rejected(self, kernel_cls):
        g = kernel_cls()
        for n in "abcd":
            g.add_node(n)
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        record = g.contract_recording("b")
        # Interleaved mutation: "a" gains a new descendant the record's
        # saved rows know nothing about.
        g.add_arc("a", "d")
        with pytest.raises(GraphError):
            g.uncontract(record)

    @pytest.mark.parametrize("kernel_cls", [ClosureGraph, BitClosureGraph])
    def test_out_of_order_undo_rejected(self, kernel_cls):
        g = kernel_cls()
        for n in "abcd":
            g.add_node(n)
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        g.add_arc("c", "d")
        first = g.contract_recording("b")
        second = g.contract_recording("c")
        with pytest.raises(GraphError):
            g.uncontract(first)  # not most-recent-first
        g.uncontract(second)
        g.uncontract(first)
        g.check_invariants()
        assert g.reaches("a", "d")

    def test_old_aliasing_would_have_corrupted(self):
        """Documents *why* the contract exists: replaying a stale record
        produces closure rows that disagree with a recomputation."""
        g = ClosureGraph()
        for n in "abcd":
            g.add_node(n)
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        record = g.contract_recording("b")
        # Reachability grows past the recorded rows: c -> d.
        g.add_arc("c", "d")
        # Force the replay past the guard, the way the old kernel behaved.
        record.mutation_stamp = g._mutations
        g.uncontract(record)
        with pytest.raises(GraphError):
            g.check_invariants()  # "b" reaches d but its stored row says {c}

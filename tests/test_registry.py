"""The name registries: round trips, unknown names, model compatibility."""

from __future__ import annotations

import pytest

from repro import registry
from repro.core.policies import DeletionPolicy
from repro.engine import Engine, EngineConfig
from repro.errors import (
    EngineError,
    IncompatiblePolicyError,
    RegistryError,
    ReproError,
    UnknownNameError,
)
from repro.scheduler.base import SchedulerBase

EXPECTED_SCHEDULERS = {
    "conflict-graph", "certifier", "strict-2pl", "multiwrite", "predeclared",
}
EXPECTED_POLICIES = {
    "never", "lemma1", "noncurrent", "eager-c1", "eager-c3", "eager-c4",
    "optimal",
}

#: Every valid (scheduler, policy) pairing per the model-compat table.
VALID_PAIRS = [
    (scheduler, policy)
    for scheduler in sorted(EXPECTED_SCHEDULERS)
    for policy in registry.compatible_policies(scheduler)
]

INVALID_PAIRS = [
    (scheduler, policy)
    for scheduler in sorted(EXPECTED_SCHEDULERS)
    for policy in sorted(EXPECTED_POLICIES)
    if policy not in registry.compatible_policies(scheduler)
]


class TestBuiltins:
    def test_all_builtin_names_present(self):
        assert set(registry.scheduler_names()) == EXPECTED_SCHEDULERS
        assert set(registry.policy_names()) == EXPECTED_POLICIES

    def test_aliases_resolve_to_canonical(self):
        assert registry.schedulers.resolve("conflict") == "conflict-graph"
        assert registry.schedulers.resolve("2pl") == "strict-2pl"

    def test_factories_build_real_instances(self):
        for name in registry.scheduler_names():
            assert isinstance(registry.create_scheduler(name), SchedulerBase)
        for name in registry.policy_names():
            assert isinstance(registry.create_policy(name), DeletionPolicy)

    def test_reverse_lookup(self):
        scheduler = registry.create_scheduler("predeclared")
        assert registry.scheduler_name_of(scheduler) == "predeclared"
        policy = registry.create_policy("eager-c4")
        assert registry.policy_name_of(policy) == "eager-c4"


class TestEngineConfigRoundTrip:
    @pytest.mark.parametrize("scheduler,policy", VALID_PAIRS)
    def test_every_valid_pair_constructs(self, scheduler, policy):
        config = EngineConfig(scheduler=scheduler, policy=policy)
        assert config.scheduler == scheduler
        assert config.policy == policy
        engine = Engine(config)
        assert type(engine.scheduler) is registry.schedulers.get(scheduler).factory
        assert type(engine.policy) is registry.policies.get(policy).factory

    @pytest.mark.parametrize("scheduler,policy", INVALID_PAIRS)
    def test_every_invalid_pair_rejected_at_construction(self, scheduler, policy):
        with pytest.raises(IncompatiblePolicyError) as excinfo:
            EngineConfig(scheduler=scheduler, policy=policy)
        # The message names the offending pair and the allowed set.
        assert policy in str(excinfo.value)
        assert excinfo.value.allowed

    def test_alias_canonicalized_in_config(self):
        config = EngineConfig(scheduler="conflict", policy="eager-c1")
        assert config.scheduler == "conflict-graph"


class TestUnknownNames:
    def test_unknown_scheduler(self):
        with pytest.raises(UnknownNameError) as excinfo:
            EngineConfig(scheduler="quantum", policy="never")
        assert "quantum" in str(excinfo.value)
        assert "conflict-graph" in str(excinfo.value)  # lists known names

    def test_unknown_policy(self):
        with pytest.raises(UnknownNameError):
            EngineConfig(scheduler="conflict-graph", policy="yolo")

    def test_unknown_name_is_a_repro_error(self):
        # One except clause catches the whole family.
        with pytest.raises(ReproError):
            registry.create_scheduler("nope")
        with pytest.raises(RegistryError):
            registry.create_policy("nope")

    def test_bad_sweep_interval(self):
        with pytest.raises(EngineError):
            EngineConfig(sweep_interval=0)
        with pytest.raises(EngineError):
            Engine(scheduler="conflict-graph", policy="never", sweep_interval=-3)


class TestPluginApi:
    def test_register_and_use_custom_pair(self):
        from repro.core.policies import NeverDeletePolicy
        from repro.scheduler.conflict import ConflictGraphScheduler

        class TracingScheduler(ConflictGraphScheduler):
            """A registered plugin variant."""

        class KeepAllPolicy(NeverDeletePolicy):
            name = "keep-all"

        registry.register_scheduler(
            "tracing", TracingScheduler, model="basic", aliases=("trace",)
        )
        registry.register_policy("keep-all", KeepAllPolicy, models={"basic"})
        try:
            engine = Engine(scheduler="trace", policy="keep-all")
            assert isinstance(engine.scheduler, TracingScheduler)
            assert "keep-all" in registry.compatible_policies("tracing")
            with pytest.raises(RegistryError):
                registry.register_scheduler(
                    "tracing", TracingScheduler, model="basic"
                )
        finally:
            # Leave the process-wide registries as we found them.
            registry.schedulers._entries.pop("tracing", None)
            registry.schedulers._aliases.pop("trace", None)
            registry.policies._entries.pop("keep-all", None)

    def test_register_rejects_unknown_model(self):
        with pytest.raises(RegistryError):
            registry.register_scheduler(
                "weird", object, model="imaginary"
            )
        with pytest.raises(RegistryError):
            registry.register_policy(
                "weird", object, models={"basic", "imaginary"}
            )


class TestCompatibilityTable:
    def test_model_specific_conditions_pinned(self):
        """The safety conditions are model-specific (C1/C2 basic, C3
        multiwrite, C4 predeclared); pin the table so a registry edit that
        silently cross-wires them fails loudly."""
        assert "eager-c4" in registry.compatible_policies("predeclared")
        assert "eager-c4" not in registry.compatible_policies("conflict-graph")
        assert "eager-c3" in registry.compatible_policies("multiwrite")
        assert "eager-c3" not in registry.compatible_policies("predeclared")
        assert "noncurrent" in registry.compatible_policies("certifier")
        assert "eager-c1" not in registry.compatible_policies("certifier")
        # never/lemma1 are safe everywhere.
        for scheduler in EXPECTED_SCHEDULERS:
            compatible = registry.compatible_policies(scheduler)
            assert "never" in compatible and "lemma1" in compatible

"""Setup shim.

The primary metadata lives in ``pyproject.toml``.  This file exists so the
package remains installable in fully offline environments whose setuptools
predates vendored wheel support (``pip install -e .`` needs the ``wheel``
package for PEP 660 builds; ``python setup.py develop`` does not).
"""

from setuptools import setup

setup()
